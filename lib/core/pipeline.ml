module Gd = Spv_process.Gate_delay

type corr_source = Explicit | Derived of float  (* corr_length *)

type t = {
  stages : Stage.t array;
  corr : Spv_stats.Correlation.t;
  source : corr_source;
}

let check_stages stages =
  if Array.length stages = 0 then invalid_arg "Pipeline: no stages"

let make stages ~corr =
  check_stages stages;
  let n = Array.length stages in
  if Spv_stats.Matrix.rows corr <> n || Spv_stats.Matrix.cols corr <> n then
    invalid_arg "Pipeline.make: correlation dimension mismatch";
  { stages = Array.copy stages; corr; source = Explicit }

let derive_corr ~corr_length stages =
  let n = Array.length stages in
  Spv_stats.Correlation.of_function ~n (fun i j ->
      let si = stages.(i) and sj = stages.(j) in
      let sys_rho =
        exp
          (-.Spv_process.Spatial.distance si.Stage.position sj.Stage.position
           /. corr_length)
      in
      Gd.correlation si.Stage.delay sj.Stage.delay ~sys_rho)

let of_stages ?(corr_length = Spv_process.Tech.bptm70.Spv_process.Tech.corr_length)
    stages =
  check_stages stages;
  {
    stages = Array.copy stages;
    corr = derive_corr ~corr_length stages;
    source = Derived corr_length;
  }

let of_circuits ?output_load ?(pitch = 1.0) ?ff tech nets =
  check_stages nets;
  let positions =
    Spv_process.Spatial.row_positions ~n:(Array.length nets) ~pitch
  in
  let stages =
    Array.mapi
      (fun i net ->
        Stage.of_circuit ?output_load ?ff ~position:positions.(i) tech net)
      nets
  in
  of_stages ~corr_length:tech.Spv_process.Tech.corr_length stages

let n_stages t = Array.length t.stages
let stage t i = t.stages.(i)
let stages t = Array.copy t.stages
let correlation t = t.corr
let stage_gaussians t = Array.map Stage.gaussian t.stages

let delay_distribution ?order t =
  Clark.max_n ?order (stage_gaussians t) ~corr:t.corr

let jensen_lower_bound t =
  Array.fold_left (fun acc s -> Float.max acc (Stage.mu s)) neg_infinity t.stages

let nominal_delay = jensen_lower_bound

let slowest_stage t =
  let best = ref 0 in
  Array.iteri
    (fun i s -> if Stage.mu s > Stage.mu t.stages.(!best) then best := i)
    t.stages;
  !best

let mvn t =
  Spv_stats.Mvn.create
    ~mus:(Array.map Stage.mu t.stages)
    ~sigmas:(Array.map Stage.sigma t.stages)
    ~corr:t.corr

let with_stage t i s =
  if i < 0 || i >= n_stages t then invalid_arg "Pipeline.with_stage: bad index";
  let stages = Array.copy t.stages in
  stages.(i) <- s;
  match t.source with
  | Explicit -> { t with stages }
  | Derived corr_length ->
      { stages; corr = derive_corr ~corr_length stages; source = t.source }

let map_stages t f =
  let stages = Array.map f t.stages in
  match t.source with
  | Explicit -> { t with stages }
  | Derived corr_length ->
      { stages; corr = derive_corr ~corr_length stages; source = t.source }

let pp fmt t =
  Format.fprintf fmt "pipeline[%d stages]:@." (n_stages t);
  Array.iter (fun s -> Format.fprintf fmt "  %a@." Stage.pp s) t.stages
