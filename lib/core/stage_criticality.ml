module G = Spv_stats.Gaussian

let probabilities ?(n = 20000) pipeline rng =
  if n <= 0 then invalid_arg "Criticality.probabilities: n <= 0";
  let k = Pipeline.n_stages pipeline in
  let mvn = Pipeline.mvn pipeline in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let draw = Spv_stats.Mvn.sample mvn rng in
    let best = ref 0 in
    for i = 1 to k - 1 do
      if draw.(i) > draw.(!best) then best := i
    done;
    counts.(!best) <- counts.(!best) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int n) counts

let probabilities_analytic_independent pipeline =
  let gs = Pipeline.stage_gaussians pipeline in
  let k = Array.length gs in
  let lo =
    Array.fold_left (fun acc g -> Float.min acc (G.mu g -. (10.0 *. G.sigma g))) infinity gs
  in
  let hi =
    Array.fold_left (fun acc g -> Float.max acc (G.mu g +. (10.0 *. G.sigma g))) neg_infinity gs
  in
  let prob i =
    if G.sigma gs.(i) = 0.0 then
      (* A deterministic stage is critical iff every other stage stays
         below its value. *)
      Array.to_list gs
      |> List.mapi (fun j g -> if j = i then 1.0 else G.cdf g (G.mu gs.(i)))
      |> List.fold_left ( *. ) 1.0
    else begin
      let f t =
        let acc = ref (G.pdf gs.(i) t) in
        Array.iteri (fun j g -> if j <> i then acc := !acc *. G.cdf g t) gs;
        !acc
      in
      (* Composite Gauss-Legendre, fine enough for smooth integrands. *)
      let panels = 48 in
      let acc = ref 0.0 in
      let w = (hi -. lo) /. float_of_int panels in
      for p = 0 to panels - 1 do
        let a = lo +. (float_of_int p *. w) in
        acc := !acc +. Spv_stats.Quadrature.gauss_legendre_32 ~f ~lo:a ~hi:(a +. w)
      done;
      !acc
    end
  in
  Array.init k prob

let entropy probs =
  Array.fold_left
    (fun acc p ->
      if p < 0.0 then invalid_arg "Criticality.entropy: negative probability";
      if p = 0.0 then acc else acc -. (p *. log p))
    0.0 probs

let yield_gradient_mu pipeline ~t_target =
  let gs = Pipeline.stage_gaussians pipeline in
  Array.mapi
    (fun i gi ->
      if G.sigma gi = 0.0 then 0.0
      else begin
        let others = ref 1.0 in
        Array.iteri (fun j g -> if j <> i then others := !others *. G.cdf g t_target) gs;
        -.(G.pdf gi t_target) *. !others
      end)
    gs

let most_critical probs =
  if Array.length probs = 0 then invalid_arg "Criticality.most_critical: empty";
  let best = ref 0 in
  Array.iteri (fun i p -> if p > probs.(!best) then best := i) probs;
  !best
