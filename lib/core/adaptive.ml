module G = Spv_stats.Gaussian
module Gd = Spv_process.Gate_delay

type policy = { range : float }

let default_policy = { range = 0.10 }

let check policy =
  if policy.range < 0.0 then invalid_arg "Adaptive: negative range"

(* Aggregate relative inter-die sigma and the per-stage decomposition
   pieces the conditional model needs. *)
type decomposition = {
  mus : float array;
  s_inter : float array;
  residual : float array;  (** sqrt(sys^2 + rand^2) per stage *)
  corr_res : Spv_stats.Correlation.t;
  r_inter : float;
}

let decompose pipeline =
  let n = Pipeline.n_stages pipeline in
  let stages = Pipeline.stages pipeline in
  let mus = Array.map Stage.mu stages in
  let s_inter =
    Array.map (fun s -> s.Stage.delay.Gd.sigma_inter) stages
  in
  let residual =
    Array.map
      (fun s ->
        let d = s.Stage.delay in
        sqrt
          ((d.Gd.sigma_sys *. d.Gd.sigma_sys)
          +. (d.Gd.sigma_rand *. d.Gd.sigma_rand)))
      stages
  in
  let corr = Pipeline.correlation pipeline in
  let sigmas = Array.map Stage.sigma stages in
  let corr_res =
    Spv_stats.Correlation.of_function ~n (fun i j ->
        let cov_total =
          Spv_stats.Correlation.get corr i j *. sigmas.(i) *. sigmas.(j)
        in
        let cov_res = cov_total -. (s_inter.(i) *. s_inter.(j)) in
        let denom = residual.(i) *. residual.(j) in
        if denom <= 0.0 then 0.0
        else Float.max (-1.0) (Float.min 1.0 (cov_res /. denom)))
  in
  let total_mu = Array.fold_left ( +. ) 0.0 mus in
  let total_si = Array.fold_left ( +. ) 0.0 s_inter in
  {
    mus;
    s_inter;
    residual;
    corr_res;
    r_inter = (if total_mu > 0.0 then total_si /. total_mu else 0.0);
  }

let correction policy d ~i_std =
  let shift = d.r_inter *. i_std in
  let ideal = if 1.0 +. shift <= 1e-6 then 1.0 +. policy.range
              else 1.0 /. (1.0 +. shift) in
  Float.max (1.0 -. policy.range) (Float.min (1.0 +. policy.range) ideal)

let conditional_yield policy d ~t_target ~i_std =
  let c = correction policy d ~i_std in
  let n = Array.length d.mus in
  let gs =
    Array.init n (fun k ->
        G.make
          ~mu:(c *. (d.mus.(k) +. (d.s_inter.(k) *. i_std)))
          ~sigma:(c *. d.residual.(k)))
  in
  let tp = Clark.max_n gs ~corr:d.corr_res in
  if G.sigma tp = 0.0 then if G.mu tp <= t_target then 1.0 else 0.0
  else G.cdf tp t_target

let integrate_standard_normal f =
  (* Composite 32-pt Gauss-Legendre of f(i) phi(i) over [-8, 8]. *)
  let panels = 8 in
  let acc = ref 0.0 in
  let w = 16.0 /. float_of_int panels in
  for p = 0 to panels - 1 do
    let lo = -8.0 +. (float_of_int p *. w) in
    acc :=
      !acc
      +. Spv_stats.Quadrature.gauss_legendre_32
           ~f:(fun i -> f i *. Spv_stats.Special.phi i)
           ~lo ~hi:(lo +. w)
  done;
  !acc

let conditional_loss policy d ~t_target ~i_std =
  let c = correction policy d ~i_std in
  let n = Array.length d.mus in
  let gs =
    Array.init n (fun k ->
        G.make
          ~mu:(c *. (d.mus.(k) +. (d.s_inter.(k) *. i_std)))
          ~sigma:(c *. d.residual.(k)))
  in
  let tp = Clark.max_n gs ~corr:d.corr_res in
  G.sf tp t_target

let yield_with_abb ?(policy = default_policy) pipeline ~t_target =
  check policy;
  let d = decompose pipeline in
  integrate_standard_normal (fun i_std ->
      conditional_yield policy d ~t_target ~i_std)

let loss_with_abb ?(policy = default_policy) pipeline ~t_target =
  check policy;
  let d = decompose pipeline in
  integrate_standard_normal (fun i_std ->
      conditional_loss policy d ~t_target ~i_std)

let yield_gain ?policy pipeline ~t_target =
  yield_with_abb ?policy pipeline ~t_target
  -. Yield.clark_gaussian pipeline ~t_target

(* ---- single-trial sampler kernel ------------------------------------ *)

type sampler = {
  sm_policy : policy;
  sm_d : decomposition;
  sm_residual_mvn : Spv_stats.Mvn.t;
}

let sampler ?(policy = default_policy) pipeline =
  check policy;
  let d = decompose pipeline in
  let k = Array.length d.mus in
  let residual_mvn =
    Spv_stats.Mvn.create ~mus:(Array.make k 0.0) ~sigmas:d.residual
      ~corr:d.corr_res
  in
  { sm_policy = policy; sm_d = d; sm_residual_mvn = residual_mvn }

let sample_delay sm rng =
  let d = sm.sm_d in
  let k = Array.length d.mus in
  let i_std = Spv_stats.Rng.gaussian rng in
  let c = correction sm.sm_policy d ~i_std in
  let res = Spv_stats.Mvn.sample sm.sm_residual_mvn rng in
  let worst = ref neg_infinity in
  for s = 0 to k - 1 do
    let delay = c *. (d.mus.(s) +. (d.s_inter.(s) *. i_std) +. res.(s)) in
    if delay > !worst then worst := delay
  done;
  !worst

let mc_yield_with_abb ?policy pipeline rng ~n ~t_target =
  if n <= 0 then invalid_arg "Adaptive.mc_yield_with_abb: n <= 0";
  let sm = sampler ?policy pipeline in
  let pass = ref 0 in
  for _ = 1 to n do
    if sample_delay sm rng <= t_target then incr pass
  done;
  float_of_int !pass /. float_of_int n

let leakage_overhead ?(policy = default_policy) tech pipeline =
  check policy;
  let d = decompose pipeline in
  let s_vth = Spv_process.Tech.delay_sensitivity_vth tech in
  integrate_standard_normal (fun i_std ->
      let c = correction policy d ~i_std in
      let dvth = (c -. 1.0) /. s_vth in
      Spv_circuit.Power.leakage_factor tech ~dvth)
