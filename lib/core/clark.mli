(** Clark's moment approximation for the maximum of Gaussian variables
    (C. E. Clark, Operations Research 9(2), 1961 — the paper's
    eqs. 4–6).

    [max2_moments] gives the exact first two moments of
    [max(X1, X2)] for jointly Gaussian X1, X2; the iterated pairwise
    reduction [max_n] then approximates [max(X1..Xn)] by treating each
    partial max as Gaussian, propagating correlations with the third
    variable through eq. 6.  The approximation error is minimised when
    variables are folded in increasing order of their means
    (the ordering the paper uses); other orders are exposed for the
    Fig. 3 error study. *)

type moments = {
  mean : float;
  variance : float;
  a : float;  (** sqrt(s1^2 + s2^2 - 2 rho s1 s2) *)
  alpha : float;  (** (mu1 - mu2) / a; 0 when a = 0 *)
}

val max2_moments :
  Spv_stats.Gaussian.t -> Spv_stats.Gaussian.t -> rho:float -> moments
(** Exact mean and variance of the max of two jointly Gaussian
    variables with correlation [rho].  Degenerate inputs (a ~ 0, i.e.
    the two variables are almost surely ordered or identical) are
    handled by returning the moments of the dominating variable. *)

val max2 :
  Spv_stats.Gaussian.t -> Spv_stats.Gaussian.t -> rho:float ->
  Spv_stats.Gaussian.t
(** Gaussian with the [max2_moments] mean and standard deviation. *)

val correlation_with_max :
  s1:float -> s2:float -> r1:float -> r2:float -> moments -> float
(** Eq. 6: correlation between a third Gaussian Y and [max(X1, X2)],
    where [r1 = corr(Y, X1)], [r2 = corr(Y, X2)], [s1], [s2] are the
    standard deviations of X1, X2 and [moments] the result of
    {!max2_moments}.  Returns 0 for a zero-variance max. *)

type order =
  | Increasing_mean  (** the paper's error-minimising order *)
  | Decreasing_mean
  | As_given

val max_n :
  ?order:order -> Spv_stats.Gaussian.t array -> corr:Spv_stats.Correlation.t ->
  Spv_stats.Gaussian.t
(** Approximate distribution of [max_i X_i] for jointly Gaussian X with
    the given correlation matrix.  Default order: [Increasing_mean].
    Requires at least one variable. *)

val max_n_independent :
  ?order:order -> Spv_stats.Gaussian.t array -> Spv_stats.Gaussian.t
(** [max_n] with the identity correlation. *)

val prefix_maxes :
  Spv_stats.Gaussian.t array -> corr:Spv_stats.Correlation.t ->
  Spv_stats.Gaussian.t array
(** Memoised prefix moments: element [k] is the Clark max of
    [gs.(0) .. gs.(k)] folded in the given order
    ([max_n ~order:As_given] over the leading (k+1)x(k+1) correlation
    block, bit-for-bit), all [n] prefixes from one recursion pass.
    This is what makes a stage-count sweep O(n^2) in pairwise folds
    instead of O(n^3).  Requires at least one variable. *)

val exact_max_cdf_independent :
  Spv_stats.Gaussian.t array -> float -> float
(** Exact CDF of the max for independent stages —
    [prod_i Phi((t - mu_i)/sigma_i)] (the paper's eq. 8) — used as the
    reference oracle for the approximation error study. *)

val exact_max_moments_independent :
  Spv_stats.Gaussian.t array -> float * float
(** Exact (mean, std) of the max of independent Gaussians by numerical
    integration of the max's density.  Intended as a test oracle:
    every input must have [sigma > 0] for the density form to hold
    (a zero-sigma component that can dominate would contribute an atom
    the integral misses). *)
