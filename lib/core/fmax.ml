module G = Spv_stats.Gaussian

let mean_std pipeline =
  let tp = Pipeline.delay_distribution pipeline in
  let mu = G.mu tp and sigma = G.sigma tp in
  if mu <= 0.0 then invalid_arg "Fmax.mean_std: non-positive mean delay";
  let r = sigma /. mu in
  ((1.0 /. mu) *. (1.0 +. (r *. r)), sigma /. (mu *. mu))

let quantile pipeline ~p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Fmax.quantile: p outside (0,1)";
  let tp = Pipeline.delay_distribution pipeline in
  let t = G.quantile tp ~p:(1.0 -. p) in
  if t <= 0.0 then invalid_arg "Fmax.quantile: delay quantile non-positive";
  1.0 /. t

let cdf pipeline f =
  if f <= 0.0 then invalid_arg "Fmax.cdf: non-positive frequency";
  let tp = Pipeline.delay_distribution pipeline in
  G.sf tp (1.0 /. f)

type bin = { f_lo : float; f_hi : float; fraction : float }

let bin_fractions pipeline ~edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Fmax.bin_fractions: no edges";
  Array.iteri
    (fun i e ->
      if e <= 0.0 then invalid_arg "Fmax.bin_fractions: non-positive edge";
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Fmax.bin_fractions: edges not increasing")
    edges;
  let cdf_at f = cdf pipeline f in
  Array.init (n + 1) (fun i ->
      let f_lo = if i = 0 then 0.0 else edges.(i - 1) in
      let f_hi = if i = n then infinity else edges.(i) in
      let c_lo = if i = 0 then 0.0 else cdf_at f_lo in
      let c_hi = if i = n then 1.0 else cdf_at f_hi in
      { f_lo; f_hi; fraction = Float.max 0.0 (c_hi -. c_lo) })

let expected_price pipeline ~edges ~prices =
  let bins = bin_fractions pipeline ~edges in
  if Array.length prices <> Array.length bins then
    invalid_arg "Fmax.expected_price: need one price per bin";
  Array.iteri
    (fun i p ->
      if p < 0.0 then invalid_arg "Fmax.expected_price: negative price";
      ignore i)
    prices;
  let acc = ref 0.0 in
  Array.iteri (fun i b -> acc := !acc +. (b.fraction *. prices.(i))) bins;
  !acc

let mc_frequencies pipeline rng ~n =
  let delays = Yield.monte_carlo_distribution pipeline rng ~n in
  Array.map
    (fun t ->
      if t <= 0.0 then invalid_arg "Fmax.mc_frequencies: non-positive delay draw";
      1.0 /. t)
    delays
