module G = Spv_stats.Gaussian
module Gd = Spv_process.Gate_delay

let negate g = G.make ~mu:(-.G.mu g) ~sigma:(G.sigma g)

let min2 g1 g2 ~rho = negate (Clark.max2 (negate g1) (negate g2) ~rho)

let min_n ?order gs ~corr =
  negate (Clark.max_n ?order (Array.map negate gs) ~corr)

let short_path_delay ?(output_load = 4.0) tech net =
  let late = Spv_circuit.Sta.run ~output_load tech net in
  let early = Spv_circuit.Sta.run_min ~output_load tech net in
  List.fold_left
    (fun acc i ->
      let d = late.Spv_circuit.Sta.gate_delays.(i) in
      Gd.add acc
        (Gd.of_nominal tech ~nominal:d ~size:(Spv_circuit.Netlist.size net i)))
    Gd.zero early.Spv_circuit.Sta.shortest_path

let race_margin ?output_load tech ~(ff : Spv_process.Flipflop.t) net =
  (* clk-to-Q and the data path sit in the same locale: their shared
     variation components add coherently, so the fast tail of the race
     margin is fatter than independence would give. *)
  Gd.add ff.Spv_process.Flipflop.clk_to_q (short_path_delay ?output_load tech net)

let hold_yield_stage ?output_load tech ~ff ~hold_ps net =
  if hold_ps < 0.0 then invalid_arg "Hold.hold_yield_stage: negative hold";
  let margin = Gd.to_gaussian (race_margin ?output_load tech ~ff net) in
  if G.sigma margin = 0.0 then if G.mu margin >= hold_ps then 1.0 else 0.0
  else G.sf margin hold_ps

let hold_yield_pipeline ?output_load ?corr_length ?(pitch = 1.0) tech ~ff
    ~hold_ps nets =
  let n = Array.length nets in
  if n = 0 then invalid_arg "Hold.hold_yield_pipeline: no stages";
  if hold_ps < 0.0 then invalid_arg "Hold.hold_yield_pipeline: negative hold";
  let corr_length =
    Option.value corr_length ~default:tech.Spv_process.Tech.corr_length
  in
  let positions = Spv_process.Spatial.row_positions ~n ~pitch in
  let margins = Array.map (race_margin ?output_load tech ~ff) nets in
  let corr =
    Spv_stats.Correlation.of_function ~n (fun i j ->
        let sys_rho =
          exp
            (-.Spv_process.Spatial.distance positions.(i) positions.(j)
             /. corr_length)
        in
        Gd.correlation margins.(i) margins.(j) ~sys_rho)
  in
  let worst = min_n (Array.map Gd.to_gaussian margins) ~corr in
  if G.sigma worst = 0.0 then if G.mu worst >= hold_ps then 1.0 else 0.0
  else G.sf worst hold_ps

let combined_yield ~setup ~hold =
  if setup < 0.0 || setup > 1.0 || hold < 0.0 || hold > 1.0 then
    invalid_arg "Hold.combined_yield: yields outside [0,1]";
  setup *. hold
