module G = Spv_stats.Gaussian

let independent_exact pipeline ~t_target =
  Array.fold_left
    (fun acc g ->
      let s = G.sigma g in
      let factor =
        if s = 0.0 then if G.mu g <= t_target then 1.0 else 0.0
        else G.cdf g t_target
      in
      acc *. factor)
    1.0
    (Pipeline.stage_gaussians pipeline)

let clark_gaussian ?order pipeline ~t_target =
  let tp = Pipeline.delay_distribution ?order pipeline in
  if G.sigma tp = 0.0 then if G.mu tp <= t_target then 1.0 else 0.0
  else G.cdf tp t_target

(* ---- stable yield-loss complements ---------------------------------- *)

(* The tails below never compute [1. -. cdf]: once a stage yield rounds
   to 1 the subtraction reports a zero loss, which is exactly wrong for
   the high-sigma targets where the loss is the quantity of interest. *)

(* log Phi(z), full relative precision on both sides: log1p of the
   stable upper tail for z >= 0, the Mills-ratio-backed log_big_phi in
   the left tail. *)
let log_stage_cdf z =
  if z >= 0.0 then Float.log1p (-.Spv_stats.Special.upper_tail z)
  else Spv_stats.Special.log_big_phi z

let independent_exact_loss pipeline ~t_target =
  let acc = ref 0.0 in
  Array.iter
    (fun g ->
      let s = G.sigma g in
      if s = 0.0 then begin
        if G.mu g > t_target then acc := neg_infinity
      end
      else acc := !acc +. log_stage_cdf ((t_target -. G.mu g) /. s))
    (Pipeline.stage_gaussians pipeline);
  if !acc = neg_infinity then 1.0 else -.Float.expm1 !acc

let clark_gaussian_loss ?order pipeline ~t_target =
  let tp = Pipeline.delay_distribution ?order pipeline in
  G.sf tp t_target

let nearly_independent pipeline =
  let corr = Pipeline.correlation pipeline in
  let n = Pipeline.n_stages pipeline in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if abs_float (Spv_stats.Correlation.get corr i j) > 1e-9 then ok := false
    done
  done;
  !ok

let estimate pipeline ~t_target =
  if nearly_independent pipeline then independent_exact pipeline ~t_target
  else clark_gaussian pipeline ~t_target

let loss pipeline ~t_target =
  if nearly_independent pipeline then independent_exact_loss pipeline ~t_target
  else clark_gaussian_loss pipeline ~t_target

let target_delay_for_yield ?order pipeline ~yield =
  if not (yield > 0.0 && yield < 1.0) then
    invalid_arg "Yield.target_delay_for_yield: yield outside (0,1)";
  let tp = Pipeline.delay_distribution ?order pipeline in
  G.mu tp +. (G.sigma tp *. Spv_stats.Special.big_phi_inv yield)

let per_stage_yield_target ~yield ~n_stages =
  if not (yield > 0.0 && yield < 1.0) then
    invalid_arg "Yield.per_stage_yield_target: yield outside (0,1)";
  if n_stages <= 0 then invalid_arg "Yield.per_stage_yield_target: n <= 0";
  yield ** (1.0 /. float_of_int n_stages)

let stage_yields pipeline ~t_target =
  Array.map
    (fun g ->
      if G.sigma g = 0.0 then if G.mu g <= t_target then 1.0 else 0.0
      else G.cdf g t_target)
    (Pipeline.stage_gaussians pipeline)

let monte_carlo_distribution pipeline rng ~n =
  if n <= 0 then invalid_arg "Yield.monte_carlo_distribution: n <= 0";
  let mvn = Pipeline.mvn pipeline in
  Array.init n (fun _ -> Spv_stats.Mvn.sample_max mvn rng)

let monte_carlo pipeline rng ~n ~t_target =
  let samples = monte_carlo_distribution pipeline rng ~n in
  Spv_stats.Descriptive.fraction_below samples ~threshold:t_target

let monte_carlo_adaptive ?batch ?min_samples ?rel_se_target ?max_samples
    pipeline rng ~t_target =
  if not (Float.is_finite t_target) then
    invalid_arg "Yield.monte_carlo_adaptive: non-finite t_target";
  let mvn = Pipeline.mvn pipeline in
  Spv_stats.Mc.estimate_probability ?batch ?min_samples ?rel_se_target
    ?max_samples (fun () -> Spv_stats.Mvn.sample_max mvn rng <= t_target)

let monte_carlo_lhs pipeline rng ~n ~t_target =
  if n <= 0 then invalid_arg "Yield.monte_carlo_lhs: n <= 0";
  let mvn = Pipeline.mvn pipeline in
  let draws = Spv_stats.Sampling.mvn_lhs mvn rng ~n in
  let pass =
    Array.fold_left
      (fun acc draw ->
        let worst = Array.fold_left Float.max neg_infinity draw in
        if worst <= t_target then acc + 1 else acc)
      0 draws
  in
  float_of_int pass /. float_of_int n

let wilson_interval ~successes ~trials ~confidence =
  if trials <= 0 then invalid_arg "Yield.wilson_interval: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Yield.wilson_interval: successes outside [0, trials]";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Yield.wilson_interval: confidence outside (0,1)";
  let z = Spv_stats.Special.big_phi_inv (1.0 -. ((1.0 -. confidence) /. 2.0)) in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))

let failure_importance pipeline rng ~n ~t_target =
  Spv_stats.Importance.failure_above (Pipeline.mvn pipeline) rng ~n
    ~threshold:t_target
