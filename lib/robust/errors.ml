type severity = Err | Warn

type diagnostic = {
  severity : severity;
  code : string;
  signal : string option;
  line : int option;
  message : string;
}

let diagnostic ?(severity = Err) ?signal ?line ~code message =
  { severity; code; signal; line; message }

let severity_to_string = function Err -> "error" | Warn -> "warning"

let diagnostic_to_string d =
  let where =
    match (d.line, d.signal) with
    | Some l, Some s -> Printf.sprintf " at line %d (%s)" l s
    | Some l, None -> Printf.sprintf " at line %d" l
    | None, Some s -> Printf.sprintf " (%s)" s
    | None, None -> ""
  in
  Printf.sprintf "%s [%s]%s: %s"
    (severity_to_string d.severity)
    d.code where d.message

type t =
  | Io_error of { path : string; message : string }
  | Parse_error of { path : string option; line : int option; message : string }
  | Lint_error of { path : string option; diagnostics : diagnostic list }
  | Numeric_error of { where : string; message : string }
  | Domain_error of { param : string; message : string }
  | Internal_error of { where : string; message : string }
  | Certificate_refuted of { what : string; detail : string }
  | Oracle_violation of { invariant : string; detail : string }
  | Deadline_exceeded of { where : string; budget_ms : int }

let to_string = function
  | Io_error { path; message } -> Printf.sprintf "I/O error: %s: %s" path message
  | Parse_error { path; line; message } ->
      let path = match path with Some p -> p ^ ": " | None -> "" in
      let line =
        match line with Some l -> Printf.sprintf "line %d: " l | None -> ""
      in
      Printf.sprintf "parse error: %s%s%s" path line message
  | Lint_error { path; diagnostics } ->
      let path = match path with Some p -> p ^ ": " | None -> "" in
      let errs =
        List.filter (fun d -> d.severity = Err) diagnostics
      in
      let shown = match errs with [] -> diagnostics | _ -> errs in
      Printf.sprintf "lint error: %s%s" path
        (String.concat "; " (List.map diagnostic_to_string shown))
  | Numeric_error { where; message } ->
      Printf.sprintf "numeric error in %s: %s" where message
  | Domain_error { param; message } ->
      Printf.sprintf "invalid %s: %s" param message
  | Internal_error { where; message } ->
      Printf.sprintf "internal error in %s: %s" where message
  | Certificate_refuted { what; detail } ->
      Printf.sprintf "certificate refuted: %s: %s" what detail
  | Oracle_violation { invariant; detail } ->
      Printf.sprintf "oracle violation [%s]: %s" invariant detail
  | Deadline_exceeded { where; budget_ms } ->
      Printf.sprintf "deadline exceeded in %s: budget %d ms spent" where
        budget_ms

(* Stable CLI contract — documented in README "Error handling & exit
   codes"; the fault-injection suite pins these values. *)
let exit_code = function
  | Io_error _ -> 2
  | Parse_error _ -> 3
  | Lint_error _ -> 4
  | Numeric_error _ -> 5
  | Domain_error _ -> 6
  | Internal_error _ -> 7
  | Certificate_refuted _ -> 8
  | Oracle_violation _ -> 9
  | Deadline_exceeded _ -> 10

let pp fmt e = Format.pp_print_string fmt (to_string e)
let pp_diagnostic fmt d = Format.pp_print_string fmt (diagnostic_to_string d)

let io ~path message = Io_error { path; message }
let parse ?path ?line message = Parse_error { path; line; message }
let lint ?path diagnostics = Lint_error { path; diagnostics }
let numeric ~where message = Numeric_error { where; message }
let domain ~param message = Domain_error { param; message }
let internal ~where message = Internal_error { where; message }
let refuted ~what detail = Certificate_refuted { what; detail }
let violation ~invariant detail = Oracle_violation { invariant; detail }
let deadline ~where ~budget_ms = Deadline_exceeded { where; budget_ms }

let of_parse_error ?path (e : Spv_circuit.Bench_format.parse_error) =
  Parse_error { path; line = e.line; message = e.message }

let of_sample_error ~where (e : Spv_stats.Descriptive.sample_error) =
  Numeric_error
    { where; message = Spv_stats.Descriptive.sample_error_to_string e }
