(** Fault-injection corpus: systematic malformed inputs driven through
    every {!Checked} entry point.

    Each case records what a hardened library must do with it: return a
    typed {!Errors.t} ([Expect_error]), succeed with a finite,
    documented-fallback value ([Expect_ok]), or either
    ([Expect_either]).  An uncaught exception or a non-finite result is
    a failure regardless of expectation — that is the invariant the
    test suite asserts. *)

type expectation = Expect_error | Expect_ok | Expect_either

type case = {
  name : string;
  expect : expectation;
  run : unit -> (string, Errors.t) result;
      (** [Ok summary] where all reported numbers have been
          finiteness-checked; [Error] is a typed failure. *)
}

type outcome =
  | Ok_value of string
  | Typed_error of Errors.t
  | Escaped of string  (** an exception leaked through [Checked] *)

type verdict = Pass | Fail of string

val corpus : unit -> case list
(** The full corpus ([> 25] cases): malformed .bench text, I/O faults,
    degenerate stage moments, broken correlation matrices, bad
    Monte-Carlo budgets, degenerate samples, sizing faults, healthy
    controls, plus hand-minimized adversarial inputs for the
    differential {!Oracle} (near-degenerate correlation, zero-sigma
    gates, single-gate stages, cap-riding reconvergence, lint-extreme
    process overrides) — each a deterministic seed-only repro that
    must pass every oracle invariant. *)

val run_case : case -> outcome

val verdict : case -> outcome -> verdict
(** [Escaped] always fails; [Ok_value] fails an [Expect_error] case;
    [Typed_error] fails an [Expect_ok] case. *)

val run_all : unit -> (case * outcome * verdict) list

val failures :
  (case * outcome * verdict) list -> (case * outcome * string) list
