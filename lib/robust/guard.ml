module M = Spv_stats.Matrix
module G = Spv_stats.Gaussian

(* ---- finiteness ----------------------------------------------------- *)

let finite ~where x =
  if Float.is_finite x then Ok x
  else
    Error
      (Errors.numeric ~where
         (Printf.sprintf "produced a non-finite value (%s)"
            (if Float.is_nan x then "NaN"
             else if x > 0.0 then "+inf"
             else "-inf")))

let finite_array ~where xs =
  let bad = ref (-1) in
  Array.iteri
    (fun i x -> if !bad < 0 && not (Float.is_finite x) then bad := i)
    xs;
  if !bad < 0 then Ok xs
  else
    Error
      (Errors.numeric ~where
         (Printf.sprintf "non-finite value at index %d" !bad))

let finite_gaussian ~where g =
  (* Gaussian.make already rejects non-finite parameters, so this only
     fires on values smuggled past the smart constructor; check anyway
     — it is the post-condition every SSTA/Clark result must meet. *)
  if Float.is_finite (G.mu g) && Float.is_finite (G.sigma g) then Ok g
  else
    Error
      (Errors.numeric ~where
         (Printf.sprintf "non-finite distribution N(%g, %g)" (G.mu g)
            (G.sigma g)))

(* ---- correlation clamping ------------------------------------------- *)

let clamp_rho ?(tol = 1e-6) ~where rho =
  if Float.is_nan rho then
    Error (Errors.numeric ~where "correlation coefficient is NaN")
  else if rho >= -1.0 && rho <= 1.0 then Ok (rho, false)
  else if rho >= -1.0 -. tol && rho <= 1.0 +. tol then
    (* Accumulated floating-point error, e.g. from the Clark recursion:
       clamp and report rather than abort. *)
    Ok (Float.max (-1.0) (Float.min 1.0 rho), true)
  else
    Error
      (Errors.numeric ~where
         (Printf.sprintf "correlation %g is far outside [-1, 1]" rho))

(* ---- PSD repair of correlation matrices ----------------------------- *)

type psd_report = {
  repaired : bool;
  min_eigenvalue : float;
  max_abs_delta : float;
  frobenius_delta : float;
}

let pp_psd_report fmt r =
  if r.repaired then
    Format.fprintf fmt
      "repaired non-PSD correlation (min eigenvalue %.3g, max entry \
       perturbation %.3g, Frobenius %.3g)"
      r.min_eigenvalue r.max_abs_delta r.frobenius_delta
  else Format.fprintf fmt "correlation PSD (min eigenvalue %.3g)" r.min_eigenvalue

let repair_correlation ?(eps = 1e-10) corr =
  let where = "Guard.repair_correlation" in
  let n = M.rows corr in
  if M.cols corr <> n then
    Error (Errors.numeric ~where "correlation matrix is not square")
  else begin
    let bad_entry = ref None in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if !bad_entry = None && not (Float.is_finite (M.get corr i j)) then
          bad_entry := Some (i, j)
      done
    done;
    match !bad_entry with
    | Some (i, j) ->
        Error
          (Errors.numeric ~where
             (Printf.sprintf "non-finite entry at (%d, %d)" i j))
    | None ->
        if not (M.is_symmetric ~eps:1e-8 corr) then
          Error (Errors.numeric ~where "correlation matrix is not symmetric")
        else begin
          let diag_ok = ref true in
          for i = 0 to n - 1 do
            if abs_float (M.get corr i i -. 1.0) > 1e-6 then diag_ok := false
          done;
          if not !diag_ok then
            Error
              (Errors.numeric ~where "correlation matrix diagonal is not 1")
          else begin
            let entries_in_range = ref true in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                let v = M.get corr i j in
                if v < -1.0 -. 1e-6 || v > 1.0 +. 1e-6 then
                  entries_in_range := false
              done
            done;
            if not !entries_in_range then
              Error
                (Errors.numeric ~where
                   "correlation entry far outside [-1, 1]")
            else begin
              let vals, vecs = M.sym_eig corr in
              let min_eig = Array.fold_left Float.min infinity vals in
              let max_eig = Array.fold_left Float.max neg_infinity vals in
              if min_eig >= -.eps then
                Ok
                  ( M.copy corr,
                    {
                      repaired = false;
                      min_eigenvalue = min_eig;
                      max_abs_delta = 0.0;
                      frobenius_delta = 0.0;
                    } )
              else if max_eig <= 0.0 then
                Error
                  (Errors.numeric ~where
                     "correlation matrix is negative semi-definite; not \
                      repairable")
              else begin
                (* Higham-style shrinkage: clip the spectrum at a tiny
                   positive floor, reconstruct, then rescale back to
                   unit diagonal so the result is again a correlation
                   matrix. *)
                let floor = 1e-8 *. max_eig in
                let clipped = Array.map (fun l -> Float.max l floor) vals in
                let raw =
                  M.init ~rows:n ~cols:n (fun i j ->
                      let acc = ref 0.0 in
                      for k = 0 to n - 1 do
                        acc :=
                          !acc
                          +. (M.get vecs i k *. clipped.(k) *. M.get vecs j k)
                      done;
                      !acc)
                in
                let d = Array.init n (fun i -> sqrt (M.get raw i i)) in
                if Array.exists (fun x -> not (x > 0.0)) d then
                  Error
                    (Errors.numeric ~where
                       "PSD repair produced a zero-variance row")
                else begin
                  let repaired_m =
                    M.init ~rows:n ~cols:n (fun i j ->
                        if i = j then 1.0
                        else
                          let v = M.get raw i j /. (d.(i) *. d.(j)) in
                          Float.max (-1.0) (Float.min 1.0 v))
                  in
                  (* Exact symmetry despite floating-point noise. *)
                  let repaired_m =
                    M.init ~rows:n ~cols:n (fun i j ->
                        if i = j then 1.0
                        else
                          0.5
                          *. (M.get repaired_m i j +. M.get repaired_m j i))
                  in
                  let max_delta = ref 0.0 and frob = ref 0.0 in
                  for i = 0 to n - 1 do
                    for j = 0 to n - 1 do
                      let dv = M.get repaired_m i j -. M.get corr i j in
                      max_delta := Float.max !max_delta (abs_float dv);
                      frob := !frob +. (dv *. dv)
                    done
                  done;
                  if Spv_stats.Correlation.is_valid repaired_m then
                    Ok
                      ( repaired_m,
                        {
                          repaired = true;
                          min_eigenvalue = min_eig;
                          max_abs_delta = !max_delta;
                          frobenius_delta = sqrt !frob;
                        } )
                  else
                    Error
                      (Errors.numeric ~where
                         "PSD repair failed to produce a valid correlation \
                          matrix")
                end
              end
            end
          end
        end
  end

(* ---- checked MVN construction --------------------------------------- *)

let mvn_create ~mus ~sigmas ~corr =
  let where = "Guard.mvn_create" in
  let n = Array.length mus in
  if Array.length sigmas <> n then
    Error
      (Errors.domain ~param:"sigmas"
         (Printf.sprintf "%d sigmas for %d means" (Array.length sigmas) n))
  else if n = 0 then Error (Errors.domain ~param:"mus" "empty")
  else
    match finite_array ~where:(where ^ " (mus)") mus with
    | Error e -> Error e
    | Ok _ -> (
        match finite_array ~where:(where ^ " (sigmas)") sigmas with
        | Error e -> Error e
        | Ok _ ->
            if Array.exists (fun s -> s < 0.0) sigmas then
              Error (Errors.domain ~param:"sigma" "negative")
            else if M.rows corr <> n || M.cols corr <> n then
              Error
                (Errors.domain ~param:"corr"
                   (Printf.sprintf "correlation is %dx%d for %d stages"
                      (M.rows corr) (M.cols corr) n))
            else (
              match repair_correlation corr with
              | Error e -> Error e
              | Ok (corr, report) -> (
                  match Spv_stats.Mvn.create ~mus ~sigmas ~corr with
                  | mvn -> Ok (mvn, report)
                  | exception (Invalid_argument msg | Failure msg) ->
                      Error (Errors.numeric ~where msg))))
