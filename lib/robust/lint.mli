(** Structural netlist linting.

    Two passes with complementary reach:

    - {!check_source} inspects the raw `.bench` statement stream, where
      combinational loops, multiply-driven signals and undefined
      references are still representable (a valid {!Spv_circuit.Netlist.t}
      rules them out by construction);
    - {!check_netlist} inspects a built netlist for defects that
      survive construction: unreachable gates, unused inputs, gates
      with no fanin, degenerate drive sizes, gate-less circuits.

    Both return typed {!Errors.diagnostic}s instead of letting
    [Topo]/[Sta]/[Ssta] fail (or silently mis-analyse) deep inside.

    Error-severity codes: [empty-circuit], [no-outputs],
    [multiple-driver], [zero-fanin], [undefined-signal],
    [combinational-loop], [bad-size].
    Warning-severity codes: [dangling-signal], [unused-input],
    [duplicate-output], [unreachable-gate]. *)

val check_source :
  (int * Spv_circuit.Bench_format.statement) list -> Errors.diagnostic list
(** Lint parsed statements (line number, statement); diagnostics are
    sorted by source line. *)

val check_bench_text :
  ?path:string -> string -> (Errors.diagnostic list, Errors.t) result
(** Tokenise and lint `.bench` text.  [Error] only when the text is so
    malformed it cannot be tokenised ({!Errors.Parse_error}). *)

val check_netlist : Spv_circuit.Netlist.t -> Errors.diagnostic list
(** Lint a built netlist. An empty list means structurally clean. *)

val errors : Errors.diagnostic list -> Errors.diagnostic list
val warnings : Errors.diagnostic list -> Errors.diagnostic list
val has_errors : Errors.diagnostic list -> bool
