(** Fuzzing campaigns: drive {!Oracle} over a stream of seed-derived
    cases, shrink and file what it finds, and summarise the run.

    Per-trial generator seeds are drawn from one splitmix64 stream
    seeded by the campaign's master seed, and each printed trial seed
    is a complete repro on its own ({!run_one} — the CLI's
    [--replay]).  Everything the campaign emits is deterministic in
    [(config)] — wall-clock time is measured through the injectable
    [now] so the default JSONL/text output is byte-identical across
    runs. *)

type config = {
  trials : int;
  seed : int;  (** master seed the per-trial seeds are split from *)
  max_gates : int;
  check_seed : int;  (** estimator seed (default 42) *)
  tolerances : Oracle.tolerances;
  invariants : Oracle.invariant list;
  shrink : bool;
  max_shrink_attempts : int;
  corpus_dir : string option;
      (** when set, violations are filed there as `.repro` cases *)
}

val default_config : config
(** 50 trials, seed 42, 80 gates, check seed 42, default tolerances,
    all invariants, shrinking on (300 attempts), no corpus dir. *)

type trial = {
  index : int;
  trial_seed : int;
  n_stages : int;
  n_gates : int;
  n_mutations : int;
  process : string;
  checks_run : int;
  violations : Oracle.violation list;
  shrink_steps : int;
  filed : string list;  (** corpus paths written for this trial *)
}

type summary = {
  schema_version : int;
  trials : int;
  seed : int;
  max_gates : int;
  checks_run : int;
  checks_passed : int;
  violations : int;
  violating_trials : int;
  shrink_steps : int;
  filed : int;
  findings : Oracle.finding list;
  wall_seconds : float;
  macro_hits : int;
      (** Hier-invariant macro-table hits over the whole campaign (the
          table is shared across trials) *)
  macro_misses : int;  (** blocks actually characterised *)
}

val schema_version : int

val run_one :
  config -> macro_table:Spv_circuit.Macro.Table.t -> index:int ->
  gen_seed:int -> trial * Oracle.finding list
(** One fully-determined trial: materialise, check, shrink each
    distinct violated invariant, file into the corpus when configured.
    Never raises on a checkable case (escapes become [Escape]
    violations). *)

val run :
  ?now:(unit -> float) -> ?on_trial:(trial -> unit) -> config -> summary
(** The whole campaign.  [on_trial] streams per-trial results (the
    CLI's progressive output); [now] (default [Sys.time]) only feeds
    [wall_seconds]. *)

(** {1 Rendering} *)

val trial_to_json : trial -> string
(** One JSONL object per trial, [schema_version]'d like
    {!Spv_workload.Sweep}. *)

val summary_to_json : ?timings:bool -> summary -> string
(** The summary object.  [wall_seconds], [macro_hits] and
    [macro_misses] are only included with [~timings:true] so default
    output stays byte-identical across runs (and keeps the v1
    schema). *)

val trial_to_text : trial -> string
val summary_to_text : summary -> string

val first_error : summary -> Errors.t option
(** The [Oracle_violation] to report (exit code 9) when the campaign
    found at least one counterexample. *)
