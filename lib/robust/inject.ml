module M = Spv_stats.Matrix
module G = Spv_stats.Gaussian

type expectation = Expect_error | Expect_ok | Expect_either

type case = {
  name : string;
  expect : expectation;
  run : unit -> (string, Errors.t) result;
}

type outcome =
  | Ok_value of string
  | Typed_error of Errors.t
  | Escaped of string

type verdict = Pass | Fail of string

let run_case c =
  match c.run () with
  | Ok s -> Ok_value s
  | Error e -> Typed_error e
  | exception e -> Escaped (Printexc.to_string e)

let verdict c outcome =
  match (outcome, c.expect) with
  | Escaped msg, _ -> Fail ("uncaught exception: " ^ msg)
  | Ok_value v, Expect_error ->
      Fail ("expected a typed error, got a value: " ^ v)
  | Typed_error e, Expect_ok ->
      Fail ("expected success, got: " ^ Errors.to_string e)
  | _ -> Pass

(* ---- helpers -------------------------------------------------------- *)

(* Every value a case reports back is finiteness-checked here, so a
   silently propagated NaN turns an Expect_ok case into a failure. *)
let show name x =
  if Float.is_finite x then Ok (Printf.sprintf "%s=%g" name x)
  else
    Error (Errors.numeric ~where:name (Printf.sprintf "non-finite %g" x))

let show_gaussian name g =
  if Float.is_finite (G.mu g) && Float.is_finite (G.sigma g) then
    Ok (Printf.sprintf "%s=N(%g, %g)" name (G.mu g) (G.sigma g))
  else Error (Errors.numeric ~where:name "non-finite distribution")

let ( let* ) = Result.bind

let parse ?(expect = Expect_error) name text =
  {
    name;
    expect;
    run =
      (fun () ->
        let* net = Checked.parse_bench_string text in
        Ok (Printf.sprintf "%d gates" (Spv_circuit.Netlist.n_gates net)));
  }

let moments ?(expect = Expect_error) name ~mus ~sigmas ~rho ~t_target =
  {
    name;
    expect;
    run =
      (fun () ->
        let* p = Checked.pipeline_of_moments ~mus ~sigmas ~rho () in
        let* y = Checked.yield_estimate p ~t_target in
        show "yield" y);
  }

let clark ?(expect = Expect_error) name ~mus ~sigmas ~corr =
  {
    name;
    expect;
    run =
      (fun () ->
        let* g = Checked.clark_max ~mus ~sigmas ~corr () in
        show_gaussian "max" g);
  }

let tech = Spv_process.Tech.bptm70

let small_net () = Spv_circuit.Generators.inverter_chain ~depth:4 ()

(* Analyzer cases report the finding count; error-severity findings
   (degenerate bounds, out-of-bound estimates) become the Lint-coded
   typed error the CLI exits with. *)
let analysis_summary (r : Spv_analysis.Analyze.result) =
  match Checked.analysis_errors r with
  | Some e -> Error e
  | None ->
      let report = r.Spv_analysis.Analyze.report in
      Ok
        (Printf.sprintf "%d findings (%d warn)"
           (List.length report.Spv_analysis.Report.findings)
           (Spv_analysis.Report.count report Spv_analysis.Report.Warn))

(* A healthy moments-level engine context shared by the engine cases. *)
let engine_ctx () =
  let* p =
    Checked.pipeline_of_moments ~mus:[| 100.0; 95.0; 90.0 |]
      ~sigmas:[| 5.0; 4.0; 3.0 |] ~rho:0.3 ()
  in
  Checked.engine_ctx_of_pipeline p

(* Adversarial near-violation inputs for the differential oracle: each
   one is a deterministic, seed-only repro sitting right at the edge of
   an estimator contract, and the oracle must still pass every
   invariant on it — a violation here is exactly the exit-9
   counterexample the fuzzer hunts. *)
let oracle_case ?invariants name build_ctx =
  {
    name;
    expect = Expect_ok;
    run =
      (fun () ->
        let ctx = build_ctx () in
        let checks, violations = Oracle.check_ctx ?invariants ctx ~seed:42 in
        match violations with
        | [] -> Ok (Printf.sprintf "%d oracle check(s)" checks)
        | v :: _ -> Error (Oracle.violation_to_error v));
  }

let fuzz_process ?inter ?random ?sys ?leff () =
  {
    Spv_circuit.Fuzz.inter_vth_mv = inter;
    random_vth_mv = random;
    sys_vth_mv = sys;
    leff_rel_inter = leff;
  }

(* ---- the corpus ----------------------------------------------------- *)

let corpus () =
  [
    (* -- malformed .bench text -- *)
    parse "bench/truncated-def" "INPUT(a)\ny = NAND(a";
    parse "bench/truncated-input" "INPUT(a\ny = INV(a)\nOUTPUT(y)\n";
    parse "bench/garbled" "\xff\xfe\x00 not a bench file at all";
    parse "bench/empty-text" "";
    parse "bench/comment-only" "# just a comment\n\n";
    parse "bench/no-outputs" "INPUT(a)\ny = INV(a)\n";
    parse "bench/undefined-signal" "INPUT(a)\ny = INV(zzz)\nOUTPUT(y)\n";
    parse "bench/undefined-output" "INPUT(a)\ny = INV(a)\nOUTPUT(q)\n";
    parse "bench/multiply-driven"
      "INPUT(a)\nn1 = INV(a)\nn1 = BUF(a)\nOUTPUT(n1)\n";
    parse "bench/input-redefined" "INPUT(a)\na = INV(a)\nOUTPUT(a)\n";
    parse "bench/duplicate-gate"
      "INPUT(a)\nn1 = INV(a)\nn2 = INV(n1)\nn1 = BUF(a)\nOUTPUT(n2)\n";
    parse "bench/trailing-garbage"
      "INPUT(a)\ny = INV(a) oops\nOUTPUT(y)\n";
    parse "bench/combinational-loop"
      "INPUT(a)\nx = INV(y)\ny = INV(x)\nOUTPUT(y)\n";
    parse "bench/self-loop" "INPUT(a)\nx = INV(x)\nOUTPUT(x)\n";
    parse "bench/unknown-cell" "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
    parse "bench/bad-arity" "INPUT(a)\ny = XOR(a)\nOUTPUT(y)\n";
    parse "bench/bad-size" "INPUT(a)\ny = INV(a) [size=zero]\nOUTPUT(y)\n";
    parse "bench/negative-size" "INPUT(a)\ny = INV(a) [size=-2]\nOUTPUT(y)\n";
    parse "bench/zero-fanin" "INPUT(a)\ny = AND()\nOUTPUT(y)\n";
    parse "bench/wire-only-circuit" "INPUT(a)\nOUTPUT(a)\n";
    parse ~expect:Expect_ok "bench/dangling-definition-warns"
      "INPUT(a)\ny = INV(a)\ndead = BUF(a)\nOUTPUT(y)\n";
    parse ~expect:Expect_ok "bench/unused-input-warns"
      "INPUT(a)\nINPUT(b)\ny = INV(a)\nOUTPUT(y)\n";
    parse ~expect:Expect_ok "bench/duplicate-output-warns"
      "INPUT(a)\ny = INV(a)\nOUTPUT(y)\nOUTPUT(y)\n";
    {
      name = "bench/missing-file";
      expect = Expect_error;
      run =
        (fun () ->
          let* net =
            Checked.parse_bench_file "/nonexistent/path/to/circuit.bench"
          in
          Ok (Spv_circuit.Netlist.name net));
    };
    {
      name = "bench/directory-as-file";
      expect = Expect_error;
      run =
        (fun () ->
          let* net = Checked.parse_bench_file "/" in
          Ok (Spv_circuit.Netlist.name net));
    };
    (* -- degenerate stage moments -- *)
    moments "moments/nan-sigma" ~mus:[| 100.0 |] ~sigmas:[| Float.nan |]
      ~rho:0.0 ~t_target:110.0;
    moments "moments/inf-mu"
      ~mus:[| Float.infinity; 100.0 |]
      ~sigmas:[| 5.0; 5.0 |] ~rho:0.0 ~t_target:110.0;
    moments "moments/negative-sigma" ~mus:[| 100.0 |] ~sigmas:[| -5.0 |]
      ~rho:0.0 ~t_target:110.0;
    moments "moments/empty-stage-list" ~mus:[||] ~sigmas:[||] ~rho:0.0
      ~t_target:110.0;
    moments "moments/length-mismatch" ~mus:[| 100.0; 90.0 |]
      ~sigmas:[| 5.0 |] ~rho:0.0 ~t_target:110.0;
    moments "moments/rho-far-out" ~mus:[| 100.0; 90.0 |]
      ~sigmas:[| 5.0; 5.0 |] ~rho:1.5 ~t_target:110.0;
    moments "moments/rho-nan" ~mus:[| 100.0; 90.0 |] ~sigmas:[| 5.0; 5.0 |]
      ~rho:Float.nan ~t_target:110.0;
    moments ~expect:Expect_ok "moments/rho-fp-overshoot"
      ~mus:[| 100.0; 90.0 |] ~sigmas:[| 5.0; 5.0 |]
      ~rho:(1.0 +. 1e-9) ~t_target:110.0;
    moments "moments/rho-below-admissible" ~mus:[| 100.0; 90.0; 95.0; 97.0 |]
      ~sigmas:[| 5.0; 5.0; 5.0; 5.0 |] ~rho:(-0.5) ~t_target:110.0;
    moments ~expect:Expect_ok "moments/all-sigmas-zero"
      ~mus:[| 100.0; 90.0 |] ~sigmas:[| 0.0; 0.0 |] ~rho:0.0 ~t_target:95.0;
    moments ~expect:Expect_ok "moments/extreme-target-high"
      ~mus:[| 100.0; 90.0 |] ~sigmas:[| 5.0; 5.0 |] ~rho:0.3 ~t_target:1e30;
    moments ~expect:Expect_ok "moments/extreme-target-low"
      ~mus:[| 100.0; 90.0 |] ~sigmas:[| 5.0; 5.0 |] ~rho:0.3
      ~t_target:(-1e30);
    {
      name = "moments/target-nan";
      expect = Expect_error;
      run =
        (fun () ->
          let* p =
            Checked.pipeline_of_moments ~mus:[| 100.0 |] ~sigmas:[| 5.0 |]
              ~rho:0.0 ()
          in
          let* y = Checked.yield_estimate p ~t_target:Float.nan in
          show "yield" y);
    };
    {
      name = "moments/target-inf";
      expect = Expect_error;
      run =
        (fun () ->
          let* p =
            Checked.pipeline_of_moments ~mus:[| 100.0 |] ~sigmas:[| 5.0 |]
              ~rho:0.0 ()
          in
          let* y = Checked.yield_estimate p ~t_target:Float.infinity in
          show "yield" y);
    };
    (* -- correlation matrices -- *)
    clark ~expect:Expect_ok "corr/non-psd-repaired"
      ~mus:[| 100.0; 95.0; 90.0 |] ~sigmas:[| 5.0; 5.0; 5.0 |]
      ~corr:
        (M.of_arrays
           [|
             [| 1.0; 0.9; 0.9 |]; [| 0.9; 1.0; -0.9 |]; [| 0.9; -0.9; 1.0 |];
           |]);
    clark "corr/non-symmetric" ~mus:[| 100.0; 95.0 |] ~sigmas:[| 5.0; 5.0 |]
      ~corr:(M.of_arrays [| [| 1.0; 0.5 |]; [| -0.5; 1.0 |] |]);
    clark "corr/nan-entry" ~mus:[| 100.0; 95.0 |] ~sigmas:[| 5.0; 5.0 |]
      ~corr:(M.of_arrays [| [| 1.0; Float.nan |]; [| Float.nan; 1.0 |] |]);
    clark "corr/bad-diagonal" ~mus:[| 100.0; 95.0 |] ~sigmas:[| 5.0; 5.0 |]
      ~corr:(M.of_arrays [| [| 2.0; 0.5 |]; [| 0.5; 2.0 |] |]);
    clark "corr/entry-out-of-range" ~mus:[| 100.0; 95.0 |]
      ~sigmas:[| 5.0; 5.0 |]
      ~corr:(M.of_arrays [| [| 1.0; 1.7 |]; [| 1.7; 1.0 |] |]);
    clark "corr/wrong-dimension" ~mus:[| 100.0; 95.0; 90.0 |]
      ~sigmas:[| 5.0; 5.0; 5.0 |]
      ~corr:(M.of_arrays [| [| 1.0; 0.5 |]; [| 0.5; 1.0 |] |]);
    clark ~expect:Expect_ok "corr/equal-means-degenerate"
      ~mus:[| 100.0; 100.0 |] ~sigmas:[| 0.0; 0.0 |]
      ~corr:(M.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |]);
    (* -- Monte-Carlo budgets -- *)
    {
      name = "mc/zero-sample-cap";
      expect = Expect_error;
      run =
        (fun () ->
          let* p =
            Checked.pipeline_of_moments ~mus:[| 100.0 |] ~sigmas:[| 5.0 |]
              ~rho:0.0 ()
          in
          let rng = Spv_stats.Rng.create ~seed:7 in
          let* r =
            Checked.monte_carlo_yield ~max_samples:0 p rng ~t_target:105.0
          in
          show "mc yield" r.Spv_stats.Mc.probability);
    };
    {
      name = "mc/nan-rel-se-target";
      expect = Expect_error;
      run =
        (fun () ->
          let* p =
            Checked.pipeline_of_moments ~mus:[| 100.0 |] ~sigmas:[| 5.0 |]
              ~rho:0.0 ()
          in
          let rng = Spv_stats.Rng.create ~seed:7 in
          let* r =
            Checked.monte_carlo_yield ~rel_se_target:Float.nan p rng
              ~t_target:105.0
          in
          show "mc yield" r.Spv_stats.Mc.probability);
    };
    {
      name = "mc/impossible-target-hits-cap";
      expect = Expect_ok;
      run =
        (fun () ->
          (* Yield ~0: the relative-SE criterion can never converge, so
             the hard cap must stop the loop and say so. *)
          let* p =
            Checked.pipeline_of_moments ~mus:[| 100.0 |] ~sigmas:[| 1.0 |]
              ~rho:0.0 ()
          in
          let rng = Spv_stats.Rng.create ~seed:7 in
          let* r =
            Checked.monte_carlo_yield ~max_samples:4096 p rng ~t_target:50.0
          in
          if r.Spv_stats.Mc.hit_cap && not r.Spv_stats.Mc.converged then
            show "mc yield" r.Spv_stats.Mc.probability
          else
            Error
              (Errors.internal ~where:"mc"
                 "cap not reported as budget exhaustion"));
    };
    (* -- degenerate samples into statistics -- *)
    {
      name = "stats/ks-empty-sample";
      expect = Expect_error;
      run =
        (fun () ->
          let* r =
            Checked.ks_against_gaussian [||] (G.make ~mu:0.0 ~sigma:1.0)
          in
          show "ks" r.Spv_stats.Kstest.statistic);
    };
    {
      name = "stats/ks-nan-sample";
      expect = Expect_error;
      run =
        (fun () ->
          let* r =
            Checked.ks_against_gaussian
              [| 1.0; Float.nan; 2.0 |]
              (G.make ~mu:0.0 ~sigma:1.0)
          in
          show "ks" r.Spv_stats.Kstest.statistic);
    };
    {
      name = "stats/histogram-empty";
      expect = Expect_error;
      run =
        (fun () ->
          let* h = Checked.histogram [||] in
          show "bins" (float_of_int (Spv_stats.Histogram.bins h)));
    };
    {
      name = "stats/histogram-inf-sample";
      expect = Expect_error;
      run =
        (fun () ->
          let* h = Checked.histogram [| 1.0; Float.infinity |] in
          show "bins" (float_of_int (Spv_stats.Histogram.bins h)));
    };
    (* -- sizing -- *)
    {
      name = "sizing/nan-target";
      expect = Expect_error;
      run =
        (fun () ->
          let* r =
            Checked.size_stage tech (small_net ()) ~t_target:Float.nan ~z:1.6
          in
          show "area" r.Spv_sizing.Lagrangian.area);
    };
    {
      name = "sizing/negative-target";
      expect = Expect_error;
      run =
        (fun () ->
          let* r =
            Checked.size_stage tech (small_net ()) ~t_target:(-50.0) ~z:1.6
          in
          show "area" r.Spv_sizing.Lagrangian.area);
    };
    {
      name = "sizing/nan-z";
      expect = Expect_error;
      run =
        (fun () ->
          let* r =
            Checked.size_stage tech (small_net ()) ~t_target:200.0
              ~z:Float.nan
          in
          show "area" r.Spv_sizing.Lagrangian.area);
    };
    (* -- engine entry points -- *)
    {
      name = "engine/jobs-zero";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e =
            Checked.engine_yield ~method_:Spv_engine.Engine.Mc ~jobs:0 ~n:64
              ctx ~t_target:105.0
          in
          show "yield" e.Spv_engine.Engine.value);
    };
    {
      name = "engine/shards-zero";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e =
            Checked.engine_yield ~method_:Spv_engine.Engine.Mc ~shards:0
              ~n:64 ctx ~t_target:105.0
          in
          show "yield" e.Spv_engine.Engine.value);
    };
    {
      name = "engine/mc-zero-trials";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e =
            Checked.engine_yield ~method_:Spv_engine.Engine.Mc ~n:0 ctx
              ~t_target:105.0
          in
          show "yield" e.Spv_engine.Engine.value);
    };
    {
      name = "engine/nan-target";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e = Checked.engine_yield ctx ~t_target:Float.nan in
          show "yield" e.Spv_engine.Engine.value);
    };
    {
      name = "engine/adaptive-zero-sample-cap";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e =
            Checked.engine_yield ~max_samples:0 ctx ~t_target:105.0
          in
          show "yield" e.Spv_engine.Engine.value);
    };
    {
      name = "engine/gate-level-on-moments-ctx";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* samples = Checked.engine_gate_level_delays ctx ~n:64 in
          show "trials" (float_of_int (Array.length samples)));
    };
    {
      name = "engine/delay-mean-unsupported-method";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e =
            Checked.engine_delay_mean
              ~method_:Spv_engine.Engine.Quadrature ctx
          in
          show "mean" e.Spv_engine.Engine.value);
    };
    (* -- static analyzer -- *)
    {
      name = "analyze/cyclic-netlist";
      expect = Expect_error;
      run =
        (fun () ->
          (* A combinational loop must die at the parse/lint boundary,
             before the analyzer can levelise it. *)
          let* net =
            Checked.parse_bench_string
              "INPUT(a)\nx = NAND(a, y)\ny = INV(x)\nOUTPUT(y)\n"
          in
          let* ctx = Checked.engine_ctx_of_circuits tech [| net |] in
          let* r = Checked.analyze ctx in
          analysis_summary r);
    };
    {
      name = "analyze/k-zero";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = Checked.engine_ctx_of_circuits tech [| small_net () |] in
          let* r = Checked.analyze ~k:0.0 ctx in
          analysis_summary r);
    };
    {
      name = "analyze/k-nan";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = Checked.engine_ctx_of_circuits tech [| small_net () |] in
          let* r = Checked.analyze ~k:Float.nan ctx in
          analysis_summary r);
    };
    {
      name = "analyze/degenerate-bounds-huge-k";
      expect = Expect_error;
      run =
        (fun () ->
          (* k=500 pushes the Vth box across the device cutoff: the
             exact alpha-power factor diverges and the interval goes
             non-finite, which must surface as a typed numeric error,
             not as a NaN/inf report. *)
          let* ctx = Checked.engine_ctx_of_circuits tech [| small_net () |] in
          let* r = Checked.analyze ~k:500.0 ctx in
          analysis_summary r);
    };
    {
      name = "analyze/empty-pipeline";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = Checked.engine_ctx_of_circuits tech [||] in
          let* r = Checked.analyze ctx in
          analysis_summary r);
    };
    {
      name = "analyze/target-nan";
      expect = Expect_error;
      run =
        (fun () ->
          let* ctx = Checked.engine_ctx_of_circuits tech [| small_net () |] in
          let* r = Checked.analyze ~t_target:Float.nan ctx in
          analysis_summary r);
    };
    {
      name = "control/analyze-circuit-healthy";
      expect = Expect_ok;
      run =
        (fun () ->
          let* ctx = Checked.engine_ctx_of_circuits tech [| small_net () |] in
          let* r = Checked.analyze ~t_target:200.0 ctx in
          analysis_summary r);
    };
    {
      name = "control/analyze-moments-healthy";
      expect = Expect_ok;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* r = Checked.analyze ~t_target:120.0 ctx in
          analysis_summary r);
    };
    (* -- healthy controls: the harness must not reject good input -- *)
    {
      name = "control/engine-adaptive-healthy";
      expect = Expect_ok;
      run =
        (fun () ->
          let* ctx = engine_ctx () in
          let* e =
            Checked.engine_yield ~max_samples:8192 ctx ~t_target:105.0
          in
          show "yield" e.Spv_engine.Engine.value);
    };
    {
      name = "control/engine-gate-level-healthy";
      expect = Expect_ok;
      run =
        (fun () ->
          let* ctx = Checked.engine_ctx_of_circuits tech [| small_net () |] in
          let* samples = Checked.engine_gate_level_delays ctx ~n:64 in
          show "mean" (Spv_stats.Descriptive.mean samples));
    };
    {
      name = "control/engine-jobs-invariant";
      expect = Expect_ok;
      run =
        (fun () ->
          (* The determinism contract: results depend on (seed, shards)
             only, never on the worker count. *)
          let* ctx = engine_ctx () in
          let yield_with jobs =
            Checked.engine_yield ~method_:Spv_engine.Engine.Mc ~jobs
              ~n:2048 ctx ~t_target:105.0
          in
          let* a = yield_with 1 in
          let* b = yield_with 3 in
          if
            Int64.equal
              (Int64.bits_of_float a.Spv_engine.Engine.value)
              (Int64.bits_of_float b.Spv_engine.Engine.value)
          then show "yield" a.Spv_engine.Engine.value
          else
            Error
              (Errors.internal ~where:"engine"
                 "jobs=3 and jobs=1 disagree"));
    };
    {
      name = "control/ssta-healthy-netlist";
      expect = Expect_ok;
      run =
        (fun () ->
          let* g = Checked.ssta_stage tech (small_net ()) in
          show_gaussian "stage" g);
    };
    moments ~expect:Expect_ok "control/healthy-pipeline"
      ~mus:[| 100.0; 95.0; 90.0 |] ~sigmas:[| 5.0; 4.0; 3.0 |] ~rho:0.3
      ~t_target:110.0;
    (* -- adversarial differential-oracle cases (hand-minimized) -- *)
    oracle_case "oracle/near-degenerate-correlation" (fun () ->
        (* Inter-die sigma at the lint ceiling, random sigma one
           quantum above zero: stage correlations land at 1 - epsilon,
           the hardest spot for Clark's moment matching. *)
        Oracle.ctx_of
          (Spv_circuit.Generators.inverter_chain_pipeline ~stages:2 ~depth:4
             ())
          (fuzz_process ~inter:80.0 ~random:0.1 ~sys:0.0 ~leff:0.0 ()));
    oracle_case "oracle/zero-sigma-gates" (fun () ->
        (* No variation at all: sigma_T = 0 forces the oracle's
           degenerate path (single target, point envelopes, step-function
           yields). *)
        Spv_engine.Engine.Ctx.of_circuits
          (Spv_process.Tech.no_variation tech)
          [| small_net () |]);
    oracle_case "oracle/single-gate-stages" (fun () ->
        (* Three stages of one inverter each: minimal per-stage moments,
           maximal relative weight of any one stage in the max. *)
        Oracle.ctx_of
          (Array.init 3 (fun i ->
               Spv_circuit.Generators.inverter_chain
                 ~name:(Printf.sprintf "one%d" i) ~depth:1 ()))
          Spv_circuit.Fuzz.nominal_process);
    oracle_case "oracle/max-depth-reconvergence" (fun () ->
        (* Every non-pinned fanin reconverges and nothing attenuates:
           the generator rides the max_depth/max_gates caps, producing
           the most reconvergent topology the lint rules allow. *)
        let config =
          {
            Spv_circuit.Fuzz.default_config with
            max_stages = 1;
            reconv_p = 1.0;
            grow_p = 1.0;
            attenuation = 1.0;
          }
        in
        let rng = Spv_stats.Rng.create ~seed:1999 in
        Oracle.ctx_of
          [| Spv_circuit.Fuzz.generate_stage ~config rng |]
          Spv_circuit.Fuzz.nominal_process);
    oracle_case "oracle/extreme-vth-override" (fun () ->
        (* Every process knob pinned to its lint-legal extreme
           (80 mV Vth sigmas, 15% Leff): the widest spread the fuzzer
           may legally draw. *)
        Oracle.ctx_of
          (Spv_circuit.Generators.inverter_chain_pipeline ~stages:2 ~depth:4
             ())
          (fuzz_process ~inter:80.0 ~random:80.0 ~sys:80.0 ~leff:0.15 ()));
    oracle_case "oracle/mean-vs-sigma-cone-ranking"
      ~invariants:
        [ Oracle.Envelope; Oracle.Containment; Oracle.Nesting; Oracle.Replay ]
        (* Agreement is excluded: Clark's moment match is documented to
           be weak at the body of this deliberately bimodal max; the
           ranking contract lives in the Envelope tail ceiling. *)
      (fun () ->
        (* Stage 0 holds the nominal critical path (10 ps higher mean,
           ~93% of the body criticality) but stage 1's doubled sigma
           owns the 4-sigma tail by an order of magnitude.  A cone
           ranking ordered by nominal delay or body criticality
           instead of criticality-weighted exceedance would shift the
           cone-guided sampler along stage 0, and the tightened 2%
           tail-ceiling envelope would catch the resulting collapse —
           so this case pins the ranking contract. *)
        match
          Checked.pipeline_of_moments ~mus:[| 100.0; 90.0 |]
            ~sigmas:[| 3.0; 6.0 |] ~rho:0.0 ()
        with
        | Ok p -> Spv_engine.Engine.Ctx.of_pipeline p
        | Error e -> failwith (Errors.to_string e));
  ]

let run_all () =
  List.map
    (fun c ->
      let o = run_case c in
      (c, o, verdict c o))
    (corpus ())

let failures results =
  List.filter_map
    (fun (c, o, v) -> match v with Pass -> None | Fail msg -> Some (c, o, msg))
    results
