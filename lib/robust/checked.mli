(** Checked entry points: the library's main operations run inside an
    exception handler that converts [Invalid_argument]/[Failure] (and
    I/O failures) into typed {!Errors.t} values, with numerical
    post-conditions (finiteness, probability ranges) verified on the
    way out.

    The CLI builds exclusively on these, so every failure path maps to
    a one-line stderr message and a documented exit code. *)

val protect : where:string -> (unit -> 'a) -> ('a, Errors.t) result
(** Run [f ()], converting escaped exceptions into typed errors:
    [Invalid_argument] → [Domain_error], [Failure] → [Numeric_error]
    (or [Certificate_refuted] when {!is_refutation} holds),
    [Sys_error] → [Io_error], stack/memory exhaustion →
    [Numeric_error], anything else unexpected → [Internal_error]. *)

val is_refutation : string -> bool
(** True when a [Failure] message carries the sizing-certificate
    refutation marker (["certificate refuted"], raised by
    [Spv_sizing.Certify_hook.postcondition]); {!protect} maps such
    failures onto {!Errors.Certificate_refuted} (exit code 8) instead
    of [Numeric_error]. *)

(** {1 Parsing and linting} *)

val parse_bench_string :
  ?name:string -> ?path:string -> ?lint:bool ->
  ?on_warning:(string -> unit) -> string ->
  (Spv_circuit.Netlist.t, Errors.t) result
(** Tokenise, lint (unless [lint:false]) and build.  Structural
    defects of [Err] severity become {!Errors.Lint_error}; [Warn]
    diagnostics are passed to [on_warning] (default: dropped) and do
    not fail the parse. *)

val parse_bench_file :
  ?lint:bool -> ?on_warning:(string -> unit) -> string ->
  (Spv_circuit.Netlist.t, Errors.t) result
(** Like {!parse_bench_string} for a file path.  An unreadable file —
    including one deleted between an existence check and the read — is
    {!Errors.Io_error}, never a raised [Sys_error]. *)

val lint_bench_file :
  string -> (Errors.diagnostic list, Errors.t) result
(** All diagnostics (errors and warnings) for a `.bench` file, without
    failing on [Err]-severity findings; [Error] only for I/O or
    tokenisation problems. *)

(** {1 Pipeline model} *)

val pipeline_of_moments :
  ?on_warning:(string -> unit) -> mus:float array -> sigmas:float array ->
  rho:float -> unit -> (Spv_core.Pipeline.t, Errors.t) result
(** Stage moments + uniform correlation.  Validates lengths,
    finiteness, sigma sign and the admissible rho range
    [[-1/(n-1), 1]]; rho within 1e-6 outside [-1, 1] is clamped with a
    warning. *)

val pipeline_of_matrix :
  ?on_warning:(string -> unit) -> mus:float array -> sigmas:float array ->
  corr:Spv_stats.Matrix.t -> unit -> (Spv_core.Pipeline.t, Errors.t) result
(** Stage moments + explicit correlation matrix; a non-PSD matrix is
    repaired via {!Guard.repair_correlation} with a warning. *)

val clark_max :
  ?on_warning:(string -> unit) -> ?order:Spv_core.Clark.order ->
  mus:float array -> sigmas:float array -> corr:Spv_stats.Matrix.t ->
  unit -> (Spv_stats.Gaussian.t, Errors.t) result
(** Clark iterated max of the stage delays, with the finiteness
    post-condition checked on the result. *)

val yield_estimate :
  Spv_core.Pipeline.t -> t_target:float -> (float, Errors.t) result
(** {!Spv_core.Yield.estimate} with [t_target] finiteness checked and
    the result verified finite and clamped into [0, 1]. *)

val monte_carlo_yield :
  ?batch:int -> ?min_samples:int -> ?rel_se_target:float ->
  ?max_samples:int -> Spv_core.Pipeline.t -> Spv_stats.Rng.t ->
  t_target:float -> (Spv_stats.Mc.report, Errors.t) result
(** Adaptive Monte-Carlo yield (see {!Spv_stats.Mc}): early-stops on
    relative standard error, hard-capped at [max_samples]. *)

(** {1 Engine}

    Typed-error wrappers over {!Spv_engine.Engine}: the unified
    estimator entry points with parameter validation mapped to
    [Domain_error] and result post-conditions (finiteness,
    probability range with clamping) to [Numeric_error]. *)

val engine_ctx_of_pipeline :
  Spv_core.Pipeline.t -> (Spv_engine.Engine.Ctx.t, Errors.t) result

val engine_ctx_of_circuits :
  ?mode:Spv_engine.Engine.mode ->
  ?macro_table:Spv_circuit.Macro.Table.t -> ?block_gates:int ->
  ?output_load:float -> ?pitch:float -> ?ff:Spv_process.Flipflop.t ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t array ->
  (Spv_engine.Engine.Ctx.t, Errors.t) result

val engine_yield :
  ?method_:Spv_engine.Engine.method_ ->
  ?proposal:Spv_engine.Engine.proposal -> ?jobs:int -> ?shards:int ->
  ?seed:int -> ?n:int -> ?batch:int -> ?min_samples:int ->
  ?rel_se_target:float -> ?max_samples:int -> Spv_engine.Engine.Ctx.t ->
  t_target:float -> (Spv_engine.Engine.estimate, Errors.t) result
(** {!Spv_engine.Engine.yield} with the estimate verified finite and
    clamped into [0, 1].  [proposal] selects the importance-sampling
    proposal family ([Importance] method only). *)

val engine_delay_mean :
  ?method_:Spv_engine.Engine.method_ -> ?jobs:int -> ?shards:int ->
  ?seed:int -> ?n:int -> ?batch:int -> ?min_samples:int ->
  ?rel_se_target:float -> ?max_samples:int -> Spv_engine.Engine.Ctx.t ->
  (Spv_engine.Engine.estimate, Errors.t) result

val engine_gate_level_delays :
  ?exact:bool -> ?jobs:int -> ?shards:int -> ?seed:int ->
  Spv_engine.Engine.Ctx.t -> n:int -> (float array, Errors.t) result

(** {1 Scenario sweeps} *)

val lookup_circuit :
  ?on_warning:(string -> unit) -> ?param:string -> string ->
  (Spv_circuit.Netlist.t, Errors.t) result
(** Resolve a circuit reference: a builtin name from
    {!Spv_workload.Grid.builtin_circuits}, else a .bench file path
    (parsed and linted).  A bare word that is neither maps to
    [Domain_error] listing the known names ([param], default
    ["--circuit"], names the offending option); unreadable paths are
    [Io_error]. *)

val sweep_grid_of_string :
  ?on_warning:(string -> unit) -> ?path:string -> string ->
  (Spv_workload.Grid.t, Errors.t) result
(** Parse and validate a scenario-grid file; syntax problems are
    [Parse_error] carrying the 1-based line where one is known. *)

val sweep_grid_of_file :
  ?on_warning:(string -> unit) -> string ->
  (Spv_workload.Grid.t, Errors.t) result

val sweep_run :
  ?mode:Spv_engine.Engine.mode -> ?proposal:Spv_engine.Engine.proposal ->
  ?jobs:int -> ?seed:int -> ?tech:Spv_process.Tech.t ->
  Spv_workload.Grid.t -> (Spv_workload.Sweep.result, Errors.t) result
(** {!Spv_workload.Sweep.run} behind the typed-error boundary, with
    every row's yield and loss verified finite and inside [0, 1]. *)

(** {1 Static analysis} *)

val analyze :
  ?k:float -> ?t_target:float -> ?hier:bool -> Spv_engine.Engine.Ctx.t ->
  (Spv_analysis.Analyze.result, Errors.t) result
(** {!Spv_analysis.Analyze.run} behind the typed-error boundary: an
    invalid [k] maps to [Domain_error]; degenerate (non-finite)
    pipeline delay bounds — the variation box crossing the device
    cutoff — map to [Numeric_error].  Error-severity findings do {e
    not} fail this call (the caller still wants the report printed);
    turn them into an exit-code-bearing error with
    {!analysis_errors}. *)

val analysis_errors : Spv_analysis.Analyze.result -> Errors.t option
(** [Some (Lint_error ...)] carrying one diagnostic per error-severity
    finding (code ["analysis"]), [None] when the report has none.  The
    CLI prints the report first, then exits with the Lint code through
    this. *)

(** {1 Sizing certificates} *)

val certify_points :
  ?nonneg_correlation:bool -> t_target:float -> yield:float ->
  Spv_core.Design_space.point array ->
  (Spv_analysis.Certify.t, Errors.t) result
(** {!Spv_analysis.Certify.of_points} behind the typed-error boundary
    (bad moments / targets map to [Domain_error]). *)

val certify_solution_file :
  ?nonneg_correlation:bool -> string ->
  (Spv_analysis.Certify.t, Errors.t) result
(** Read and certify a solution file ([t_target] / [yield] / [stage i
    mu sigma] lines).  Unreadable files are [Io_error], malformed
    contents [Parse_error]. *)

val certify_ctx :
  ?t_target:float -> yield:float -> Spv_engine.Engine.Ctx.t ->
  (Spv_analysis.Certify.t, Errors.t) result

val certificate_error : Spv_analysis.Certify.t -> Errors.t option
(** [Some (Certificate_refuted ...)] carrying the counterexample when
    the certificate is refuted (the CLI exits 8 through this), [None]
    on proved or inconclusive certificates. *)

(** {1 Circuit timing and sizing} *)

val ssta_stage :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> (Spv_stats.Gaussian.t, Errors.t) result

val size_stage :
  ?options:Spv_sizing.Lagrangian.options -> ?ff:Spv_process.Flipflop.t ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> t_target:float -> z:float ->
  (Spv_sizing.Lagrangian.report, Errors.t) result

(** {1 Statistics} *)

val ks_against_gaussian :
  float array -> Spv_stats.Gaussian.t ->
  (Spv_stats.Kstest.result, Errors.t) result

val histogram :
  ?bins:int -> float array -> (Spv_stats.Histogram.t, Errors.t) result
