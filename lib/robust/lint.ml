module Bf = Spv_circuit.Bench_format
module Net = Spv_circuit.Netlist
open Errors

(* ---- source-level lint (raw .bench statements) ---------------------- *)

(* Works on the statement stream rather than a built Netlist.t because
   the defects it hunts — combinational loops, multiple drivers,
   undefined signals — are exactly the ones a valid Netlist.t cannot
   represent. *)
let check_source statements =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let inputs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let defs : (string, int * string list) Hashtbl.t = Hashtbl.create 64 in
  let outputs = ref [] in
  let defined signal = Hashtbl.mem inputs signal || Hashtbl.mem defs signal in
  let first_line signal =
    match Hashtbl.find_opt inputs signal with
    | Some l -> Some l
    | None -> Option.map fst (Hashtbl.find_opt defs signal)
  in
  List.iter
    (fun (lineno, st) ->
      match st with
      | Bf.St_input signal ->
          if defined signal then
            emit
              (diagnostic ~code:"multiple-driver" ~signal ~line:lineno
                 (Printf.sprintf "%S is already driven (first at line %d)"
                    signal
                    (Option.value ~default:0 (first_line signal))))
          else Hashtbl.add inputs signal lineno
      | Bf.St_output signal -> outputs := (lineno, signal) :: !outputs
      | Bf.St_def { signal; args; _ } ->
          if defined signal then
            emit
              (diagnostic ~code:"multiple-driver" ~signal ~line:lineno
                 (Printf.sprintf "%S is already driven (first at line %d)"
                    signal
                    (Option.value ~default:0 (first_line signal))))
          else begin
            Hashtbl.add defs signal (lineno, args);
            if args = [] then
              emit
                (diagnostic ~code:"zero-fanin" ~signal ~line:lineno
                   (Printf.sprintf "gate %S has no inputs" signal))
          end)
    statements;
  let outputs = List.rev !outputs in
  if Hashtbl.length defs = 0 && Hashtbl.length inputs = 0 && outputs = [] then
    emit (diagnostic ~code:"empty-circuit" "no statements");
  if outputs = [] then
    emit (diagnostic ~code:"no-outputs" "no OUTPUT statements")
  else if Hashtbl.length defs = 0 then
    emit (diagnostic ~code:"empty-circuit" "circuit contains no gates");
  (* Undefined references. *)
  Hashtbl.iter
    (fun signal (lineno, args) ->
      List.iter
        (fun a ->
          if not (defined a) then
            emit
              (diagnostic ~code:"undefined-signal" ~signal:a ~line:lineno
                 (Printf.sprintf "%S (input of %S) is never driven" a signal)))
        args)
    defs;
  let seen_outputs : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (lineno, signal) ->
      if Hashtbl.mem seen_outputs signal then
        emit
          (diagnostic ~severity:Warn ~code:"duplicate-output" ~signal
             ~line:lineno
             (Printf.sprintf "OUTPUT(%s) repeated" signal))
      else begin
        Hashtbl.add seen_outputs signal ();
        if not (defined signal) then
          emit
            (diagnostic ~code:"undefined-signal" ~signal ~line:lineno
               (Printf.sprintf "output %S is never driven" signal))
      end)
    outputs;
  (* Combinational loops: colour DFS over the definition graph.  Each
     cycle is reported once, at its first signal in DFS order. *)
  let colour : (string, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 64 in
  let rec visit signal =
    match Hashtbl.find_opt colour signal with
    | Some `Black -> ()
    | Some `Grey ->
        let line = Option.map fst (Hashtbl.find_opt defs signal) in
        emit
          (diagnostic ~code:"combinational-loop" ~signal ?line
             (Printf.sprintf "combinational cycle through %S" signal));
        Hashtbl.replace colour signal `Black
    | None -> (
        match Hashtbl.find_opt defs signal with
        | None -> ()
        | Some (_, args) ->
            Hashtbl.replace colour signal `Grey;
            List.iter visit args;
            (* May already be blackened by the cycle report above. *)
            Hashtbl.replace colour signal `Black)
  in
  Hashtbl.iter (fun signal _ -> visit signal) defs;
  (* Dangling definitions and unused inputs. *)
  let used : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (_, args) -> List.iter (fun a -> Hashtbl.replace used a ()) args)
    defs;
  List.iter (fun (_, signal) -> Hashtbl.replace used signal ()) outputs;
  Hashtbl.iter
    (fun signal (lineno, _) ->
      if not (Hashtbl.mem used signal) then
        emit
          (diagnostic ~severity:Warn ~code:"dangling-signal" ~signal
             ~line:lineno
             (Printf.sprintf
                "%S drives nothing and is not an output" signal)))
    defs;
  Hashtbl.iter
    (fun signal lineno ->
      if not (Hashtbl.mem used signal) then
        emit
          (diagnostic ~severity:Warn ~code:"unused-input" ~signal ~line:lineno
             (Printf.sprintf "input %S is never used" signal)))
    inputs;
  (* Stable order: by line, then code, for reproducible reports. *)
  List.sort
    (fun a b ->
      match compare a.line b.line with 0 -> compare a.code b.code | c -> c)
    !diags

(* ---- netlist-level lint (post-construction structure) --------------- *)

let node_name net id =
  match Net.node net id with
  | Net.Primary_input label -> label
  | Net.Gate _ -> Printf.sprintf "n%d" id

let check_netlist net =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let n = Net.n_nodes net in
  if Net.n_gates net = 0 then
    emit (diagnostic ~code:"empty-circuit" "circuit contains no gates");
  (* Reachability from the outputs, walking fanins. *)
  let reachable = Array.make n false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      match Net.node net id with
      | Net.Primary_input _ -> ()
      | Net.Gate { fanin; _ } -> Array.iter mark fanin
    end
  in
  Array.iter mark (Net.outputs net);
  Array.iter
    (fun id ->
      if not reachable.(id) then
        emit
          (diagnostic ~severity:Warn ~code:"unreachable-gate"
             ~signal:(node_name net id)
             (Printf.sprintf "gate %s feeds no primary output"
                (node_name net id))))
    (Net.gate_ids net);
  Array.iter
    (fun id ->
      if Net.fanouts net id = [] && not reachable.(id) then
        emit
          (diagnostic ~severity:Warn ~code:"unused-input"
             ~signal:(node_name net id)
             (Printf.sprintf "input %s is never used" (node_name net id))))
    (Net.input_ids net);
  Array.iter
    (fun id ->
      (match Net.node net id with
      | Net.Gate { fanin = [||]; _ } ->
          emit
            (diagnostic ~code:"zero-fanin" ~signal:(node_name net id)
               (Printf.sprintf "gate %s has no inputs" (node_name net id)))
      | _ -> ());
      let size = Net.size net id in
      if not (Float.is_finite size && size > 0.0) then
        emit
          (diagnostic ~code:"bad-size" ~signal:(node_name net id)
             (Printf.sprintf "gate %s has non-positive or non-finite size %g"
                (node_name net id) size)))
    (Net.gate_ids net);
  List.rev !diags

(* ---- helpers -------------------------------------------------------- *)

let errors diags = List.filter (fun d -> d.severity = Err) diags
let warnings diags = List.filter (fun d -> d.severity = Warn) diags
let has_errors diags = List.exists (fun d -> d.severity = Err) diags

let check_bench_text ?path text =
  match Bf.statements_of_string text with
  | Error e -> Error (Errors.of_parse_error ?path e)
  | Ok statements -> Ok (check_source statements)
