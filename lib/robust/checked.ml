module Bf = Spv_circuit.Bench_format

let ( let* ) = Result.bind

(* ---- the exception-to-typed-error boundary -------------------------- *)

(* The sizing certificate hook ([Spv_sizing.Certify_hook]) signals a
   refuted certificate through [Failure] with this marker in the
   message; it must surface as [Certificate_refuted] (exit 8), not as
   a numeric error. *)
let refutation_marker = "certificate refuted"

let is_refutation msg =
  let lm = String.length refutation_marker and l = String.length msg in
  let rec scan i =
    i + lm <= l && (String.sub msg i lm = refutation_marker || scan (i + 1))
  in
  scan 0

let protect ~where f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Errors.domain ~param:where msg)
  | exception Failure msg when is_refutation msg ->
      Error (Errors.refuted ~what:where msg)
  | exception Failure msg -> Error (Errors.numeric ~where msg)
  | exception Sys_error msg -> Error (Errors.io ~path:where msg)
  | exception Division_by_zero ->
      Error (Errors.numeric ~where "division by zero")
  | exception Stack_overflow ->
      Error (Errors.numeric ~where "input too deeply nested (stack overflow)")
  | exception Out_of_memory ->
      Error (Errors.numeric ~where "input too large (out of memory)")
  | exception Not_found ->
      Error (Errors.internal ~where "unhandled Not_found")

(* ---- parsing and linting -------------------------------------------- *)

let warn_diags on_warning diags =
  List.iter
    (fun d -> on_warning (Errors.diagnostic_to_string d))
    (Lint.warnings diags)

let parse_bench_string ?name ?path ?(lint = true) ?(on_warning = ignore) text =
  match Bf.statements_of_string text with
  | Error e -> Error (Errors.of_parse_error ?path e)
  | Ok statements ->
      let* () =
        if not lint then Ok ()
        else begin
          let diags = Lint.check_source statements in
          if Lint.has_errors diags then Error (Errors.lint ?path diags)
          else begin
            warn_diags on_warning diags;
            Ok ()
          end
        end
      in
      let* net =
        match Bf.of_string_result ?name text with
        | Ok net -> Ok net
        | Error e -> Error (Errors.of_parse_error ?path e)
      in
      if lint then begin
        let diags = Lint.check_netlist net in
        if Lint.has_errors diags then Error (Errors.lint ?path diags)
        else begin
          warn_diags on_warning diags;
          Ok net
        end
      end
      else Ok net

(* Sys_error messages already lead with the path; strip it so the
   Io_error (which prints the path itself) does not say it twice. *)
let strip_path_prefix path msg =
  let prefix = path ^ ": " in
  if String.length msg > String.length prefix
     && String.sub msg 0 (String.length prefix) = prefix
  then String.sub msg (String.length prefix) (String.length msg - String.length prefix)
  else msg

let slurp path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Errors.io ~path (strip_path_prefix path msg))
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> Ok text
      | exception Sys_error msg -> Error (Errors.io ~path msg)
      | exception End_of_file -> Error (Errors.io ~path "truncated read"))

let parse_bench_file ?lint ?on_warning path =
  let* text = slurp path in
  parse_bench_string
    ~name:(Filename.remove_extension (Filename.basename path))
    ~path ?lint ?on_warning text

let lint_bench_file path =
  let* text = slurp path in
  Lint.check_bench_text ~path text

(* ---- moment validation ---------------------------------------------- *)

let validate_moments ~mus ~sigmas =
  let n = Array.length mus in
  if n = 0 then Error (Errors.domain ~param:"mu" "no stages given")
  else if Array.length sigmas <> n then
    Error
      (Errors.domain ~param:"sigma"
         (Printf.sprintf "%d sigmas for %d means" (Array.length sigmas) n))
  else
    let* _ = Guard.finite_array ~where:"stage means" mus in
    let* _ = Guard.finite_array ~where:"stage sigmas" sigmas in
    if Array.exists (fun s -> s < 0.0) sigmas then
      Error (Errors.domain ~param:"sigma" "negative sigma")
    else Ok n

(* ---- pipeline / Clark / yield entry points -------------------------- *)

let pipeline_of_moments ?(on_warning = ignore) ~mus ~sigmas ~rho () =
  let* n = validate_moments ~mus ~sigmas in
  let given_rho = rho in
  let* rho, clamped = Guard.clamp_rho ~where:"pipeline rho" rho in
  if clamped then
    on_warning
      (Printf.sprintf "rho clamped from %.17g to %g" given_rho rho);
  let* corr =
    protect ~where:"rho" (fun () -> Spv_stats.Correlation.uniform ~n ~rho)
  in
  let stages =
    Array.init n (fun i ->
        Spv_core.Stage.of_moments ~mu:mus.(i) ~sigma:sigmas.(i) ())
  in
  protect ~where:"pipeline" (fun () -> Spv_core.Pipeline.make stages ~corr)

let pipeline_of_matrix ?(on_warning = ignore) ~mus ~sigmas ~corr () =
  let* n = validate_moments ~mus ~sigmas in
  if Spv_stats.Matrix.rows corr <> n || Spv_stats.Matrix.cols corr <> n then
    Error
      (Errors.domain ~param:"corr"
         (Printf.sprintf "correlation is %dx%d for %d stages"
            (Spv_stats.Matrix.rows corr)
            (Spv_stats.Matrix.cols corr)
            n))
  else
    let* corr, report = Guard.repair_correlation corr in
    if report.Guard.repaired then
      on_warning (Format.asprintf "%a" Guard.pp_psd_report report);
    let stages =
      Array.init n (fun i ->
          Spv_core.Stage.of_moments ~mu:mus.(i) ~sigma:sigmas.(i) ())
    in
    protect ~where:"pipeline" (fun () -> Spv_core.Pipeline.make stages ~corr)

let clark_max ?on_warning ?order ~mus ~sigmas ~corr () =
  let* pipeline = pipeline_of_matrix ?on_warning ~mus ~sigmas ~corr () in
  let* g =
    protect ~where:"Clark iterated max" (fun () ->
        Spv_core.Pipeline.delay_distribution ?order pipeline)
  in
  Guard.finite_gaussian ~where:"Clark iterated max" g

let yield_estimate pipeline ~t_target =
  if not (Float.is_finite t_target) then
    Error (Errors.domain ~param:"t_target" "must be finite")
  else
    let* y =
      protect ~where:"yield estimate" (fun () ->
          Spv_core.Yield.estimate pipeline ~t_target)
    in
    let* y = Guard.finite ~where:"yield estimate" y in
    if y < -1e-9 || y > 1.0 +. 1e-9 then
      Error
        (Errors.numeric ~where:"yield estimate"
           (Printf.sprintf "probability %g outside [0, 1]" y))
    else Ok (Float.max 0.0 (Float.min 1.0 y))

let monte_carlo_yield ?batch ?min_samples ?rel_se_target ?max_samples pipeline
    rng ~t_target =
  if not (Float.is_finite t_target) then
    Error (Errors.domain ~param:"t_target" "must be finite")
  else
    let* report =
      protect ~where:"Monte-Carlo yield" (fun () ->
          Spv_core.Yield.monte_carlo_adaptive ?batch ?min_samples
            ?rel_se_target ?max_samples pipeline rng ~t_target)
    in
    let* _ =
      Guard.finite ~where:"Monte-Carlo yield" report.Spv_stats.Mc.probability
    in
    Ok report

(* ---- engine entry points -------------------------------------------- *)

module Engine = Spv_engine.Engine

let engine_ctx_of_pipeline pipeline =
  protect ~where:"engine context" (fun () -> Engine.Ctx.of_pipeline pipeline)

let engine_ctx_of_circuits ?mode ?macro_table ?block_gates ?output_load
    ?pitch ?ff tech nets =
  protect ~where:"engine context" (fun () ->
      Engine.Ctx.of_circuits ?mode ?macro_table ?block_gates ?output_load
        ?pitch ?ff tech nets)

let checked_probability ~where (e : Engine.estimate) =
  let* _ = Guard.finite ~where e.Engine.value in
  if e.Engine.value < -1e-9 || e.Engine.value > 1.0 +. 1e-9 then
    Error
      (Errors.numeric ~where
         (Printf.sprintf "probability %g outside [0, 1]" e.Engine.value))
  else
    Ok
      { e with Engine.value = Float.max 0.0 (Float.min 1.0 e.Engine.value) }

let engine_yield ?method_ ?proposal ?jobs ?shards ?seed ?n ?batch
    ?min_samples ?rel_se_target ?max_samples ctx ~t_target =
  if not (Float.is_finite t_target) then
    Error (Errors.domain ~param:"t_target" "must be finite")
  else
    let* e =
      protect ~where:"engine yield" (fun () ->
          Engine.yield ?method_ ?proposal ?jobs ?shards ?seed ?n ?batch
            ?min_samples ?rel_se_target ?max_samples ctx ~t_target)
    in
    checked_probability ~where:"engine yield" e

let engine_delay_mean ?method_ ?jobs ?shards ?seed ?n ?batch ?min_samples
    ?rel_se_target ?max_samples ctx =
  let* e =
    protect ~where:"engine delay mean" (fun () ->
        Engine.delay_mean ?method_ ?jobs ?shards ?seed ?n ?batch ?min_samples
          ?rel_se_target ?max_samples ctx)
  in
  let* _ = Guard.finite ~where:"engine delay mean" e.Engine.value in
  Ok e

let engine_gate_level_delays ?exact ?jobs ?shards ?seed ctx ~n =
  let* samples =
    protect ~where:"engine gate-level MC" (fun () ->
        Engine.gate_level_delays ?exact ?jobs ?shards ?seed ctx ~n)
  in
  let* _ = Guard.finite_array ~where:"engine gate-level MC" samples in
  Ok samples

(* ---- sweep entry points ---------------------------------------------- *)

module Grid = Spv_workload.Grid
module Sweep = Spv_workload.Sweep

let lookup_circuit ?(on_warning = ignore) ?(param = "--circuit") name =
  match List.assoc_opt name Grid.builtin_circuits with
  | Some f -> protect ~where:("circuit " ^ name) f
  | None -> (
      (* Anything else is a .bench path.  No Sys.file_exists pre-check:
         parse_bench_file owns the open, so a file deleted between
         check and read is an Io_error, not an uncaught Sys_error. *)
      match parse_bench_file ~on_warning name with
      | Ok net -> Ok net
      | Error (Errors.Io_error _)
        when (not (String.contains name '/'))
             && not (String.contains name '.') ->
          (* A bare word that is not a readable file was almost
             certainly meant as a builtin circuit name. *)
          Error
            (Errors.domain ~param
               (Printf.sprintf
                  "unknown circuit %S (known: %s, or a .bench file path)" name
                  (String.concat ", " (List.map fst Grid.builtin_circuits))))
      | Error e -> Error e)

let sweep_grid_of_string ?on_warning ?path text =
  let lookup name =
    match lookup_circuit ?on_warning ~param:"circuit" name with
    | Ok net -> Ok net
    | Error e -> Error (Errors.to_string e)
  in
  match Grid.of_string ~lookup text with
  | Ok grid -> Ok grid
  | Error e -> Error (Errors.parse ?path ?line:e.Grid.line e.Grid.message)

let sweep_grid_of_file ?on_warning path =
  let* text = slurp path in
  sweep_grid_of_string ?on_warning ~path text

let sweep_run ?mode ?proposal ?jobs ?seed ?tech grid =
  let where = "sweep" in
  let* r =
    protect ~where (fun () ->
        Sweep.run ?mode ?proposal ?jobs ?seed ?tech grid)
  in
  let* () =
    Array.fold_left
      (fun acc (row : Sweep.row) ->
        let* () = acc in
        let v = row.Sweep.estimate.Engine.value and l = row.Sweep.loss in
        if not (Float.is_finite v && Float.is_finite l) then
          Error
            (Errors.numeric ~where
               (Printf.sprintf "scenario %d: non-finite estimate"
                  row.Sweep.scenario.Sweep.index))
        else if v < 0.0 || v > 1.0 || l < 0.0 || l > 1.0 then
          Error
            (Errors.numeric ~where
               (Printf.sprintf
                  "scenario %d: probability outside [0, 1] (yield %g, loss %g)"
                  row.Sweep.scenario.Sweep.index v l))
        else Ok ())
      (Ok ()) r.Sweep.rows
  in
  Ok r

(* ---- static-analysis entry points ----------------------------------- *)

module Analyze = Spv_analysis.Analyze

let analyze ?k ?t_target ?hier ctx =
  let* r =
    protect ~where:"analyze" (fun () -> Analyze.run ?k ?t_target ?hier ctx)
  in
  if
    not
      (Spv_analysis.Interval.is_finite r.Analyze.bounds.Spv_analysis.Bounds.delay)
  then
    Error
      (Errors.numeric ~where:"analyze"
         "degenerate interval bounds: the variation box crosses the device \
          cutoff (overdrive <= 0); lower k or the variation sigmas")
  else Ok r

let analysis_errors (r : Analyze.result) =
  let errs =
    List.filter
      (fun f -> f.Spv_analysis.Report.severity = Spv_analysis.Report.Error)
      r.Analyze.report.Spv_analysis.Report.findings
  in
  match errs with
  | [] -> None
  | errs ->
      Some
        (Errors.lint
           (List.map
              (fun f ->
                Errors.diagnostic ~code:"analysis"
                  ~signal:f.Spv_analysis.Report.pass
                  f.Spv_analysis.Report.message)
              errs))

(* ---- certificate entry points --------------------------------------- *)

module Certify = Spv_analysis.Certify

let certify_points ?nonneg_correlation ~t_target ~yield points =
  protect ~where:"certify" (fun () ->
      Certify.of_points ?nonneg_correlation ~t_target ~yield points)

let certify_solution_file ?nonneg_correlation path =
  let* text = slurp path in
  match Certify.parse_solution text with
  | Error msg -> Error (Errors.parse ~path msg)
  | Ok sol ->
      certify_points ?nonneg_correlation ~t_target:sol.Certify.sol_t_target
        ~yield:sol.Certify.sol_yield sol.Certify.points

let certify_ctx ?t_target ~yield ctx =
  protect ~where:"certify" (fun () -> Certify.of_ctx ?t_target ~yield ctx)

let certificate_error (c : Certify.t) =
  match c.Certify.status with
  | Certify.Refuted ->
      let detail =
        match c.Certify.counterexample with
        | Some s ->
            Printf.sprintf
              "stage %d (mu=%.6g, sigma=%.6g) has yield %.6g < target %.6g"
              s.Certify.stage s.Certify.point.Spv_core.Design_space.mu
              s.Certify.point.Spv_core.Design_space.sigma s.Certify.stage_yield
              c.Certify.yield
        | None -> "design space membership disproved"
      in
      Some (Errors.refuted ~what:"sizing certificate" detail)
  | Certify.Proved | Certify.Inconclusive -> None

(* ---- circuit-level entry points ------------------------------------- *)

let ssta_stage ?output_load ?ff tech net =
  let* g =
    protect ~where:"SSTA" (fun () ->
        Spv_circuit.Ssta.stage_gaussian ?output_load ?ff tech net)
  in
  Guard.finite_gaussian ~where:"SSTA" g

let size_stage ?options ?ff tech net ~t_target ~z =
  if not (Float.is_finite t_target && t_target > 0.0) then
    Error (Errors.domain ~param:"t_target" "must be finite and positive")
  else if not (Float.is_finite z) then
    Error (Errors.domain ~param:"z" "must be finite")
  else
    let* r =
      protect ~where:"sizing" (fun () ->
          Spv_sizing.Lagrangian.size_stage ?options ?ff tech net ~t_target ~z)
    in
    let* _ =
      Guard.finite ~where:"sizing (stat delay)"
        r.Spv_sizing.Lagrangian.stat_delay
    in
    let* _ = Guard.finite ~where:"sizing (area)" r.Spv_sizing.Lagrangian.area in
    Ok r

(* ---- statistics entry points ---------------------------------------- *)

let ks_against_gaussian samples g =
  match Spv_stats.Kstest.against_gaussian_checked samples g with
  | Ok r -> Ok r
  | Error e -> Error (Errors.of_sample_error ~where:"KS test" e)

let histogram ?bins samples =
  match Spv_stats.Histogram.of_samples_checked ?bins samples with
  | Ok h -> Ok h
  | Error e -> Error (Errors.of_sample_error ~where:"histogram" e)
