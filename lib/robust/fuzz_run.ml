module Rng = Spv_stats.Rng
module Netlist = Spv_circuit.Netlist
module Fuzz = Spv_circuit.Fuzz
module Macro = Spv_circuit.Macro

let schema_version = 1

type config = {
  trials : int;
  seed : int;
  max_gates : int;
  check_seed : int;
  tolerances : Oracle.tolerances;
  invariants : Oracle.invariant list;
  shrink : bool;
  max_shrink_attempts : int;
  corpus_dir : string option;
}

let default_config =
  {
    trials = 50;
    seed = 42;
    max_gates = 80;
    check_seed = 42;
    tolerances = Oracle.default_tolerances;
    invariants = Oracle.all_invariants;
    shrink = true;
    max_shrink_attempts = 300;
    corpus_dir = None;
  }

type trial = {
  index : int;
  trial_seed : int;
  n_stages : int;
  n_gates : int;
  n_mutations : int;
  process : string;
  checks_run : int;
  violations : Oracle.violation list;
  shrink_steps : int;
  filed : string list;
}

type summary = {
  schema_version : int;
  trials : int;
  seed : int;
  max_gates : int;
  checks_run : int;
  checks_passed : int;
  violations : int;
  violating_trials : int;
  shrink_steps : int;
  filed : int;
  findings : Oracle.finding list;
  wall_seconds : float;
  macro_hits : int;
  macro_misses : int;
}

let validate (cfg : config) =
  if cfg.trials < 1 then invalid_arg "Fuzz_run: trials < 1";
  if cfg.max_gates < 1 then invalid_arg "Fuzz_run: max_gates < 1";
  if cfg.max_shrink_attempts < 0 then
    invalid_arg "Fuzz_run: max_shrink_attempts < 0";
  if cfg.invariants = [] then invalid_arg "Fuzz_run: empty invariant list"

(* Distinct invariants in first-seen order. *)
let violated_invariants violations =
  List.rev
    (List.fold_left
       (fun acc (v : Oracle.violation) ->
         if List.mem v.Oracle.invariant acc then acc
         else v.Oracle.invariant :: acc)
       [] violations)

let run_one (cfg : config) ~macro_table ~index ~gen_seed =
  let case = { Oracle.gen_seed; max_gates = cfg.max_gates } in
  let outcome =
    Oracle.run_case ~tolerances:cfg.tolerances ~invariants:cfg.invariants
      ~macro_table ~check_seed:cfg.check_seed case
  in
  let materialised =
    match
      Checked.protect ~where:"fuzz materialise" (fun () ->
          Oracle.materialise case)
    with
    | Ok m -> Some m
    | Error _ -> None
  in
  let n_stages, n_gates, n_mutations, process =
    match materialised with
    | Some m ->
        ( Array.length m.Oracle.circuits,
          Array.fold_left
            (fun acc net -> acc + Netlist.n_gates net)
            0 m.Oracle.circuits,
          m.Oracle.n_mutations,
          Fuzz.process_to_string m.Oracle.process )
    | None -> (0, 0, 0, "?")
  in
  let findings, shrink_steps =
    match (outcome.Oracle.violations, materialised) with
    | [], _ | _, None -> ([], 0)
    | violations, Some m ->
        List.fold_left
          (fun (fs, steps) invariant ->
            let violation =
              List.find
                (fun (v : Oracle.violation) -> v.Oracle.invariant = invariant)
                violations
            in
            let circuits, process, n =
              if cfg.shrink then
                Oracle.shrink ~tolerances:cfg.tolerances
                  ~max_attempts:cfg.max_shrink_attempts ~invariant
                  ~check_seed:cfg.check_seed m.Oracle.circuits
                  m.Oracle.process
              else (m.Oracle.circuits, m.Oracle.process, 0)
            in
            let finding =
              {
                Oracle.found = case;
                check_seed = cfg.check_seed;
                violation;
                circuits;
                process;
                shrink_steps = n;
              }
            in
            (finding :: fs, steps + n))
          ([], 0)
          (violated_invariants violations)
  in
  let findings = List.rev findings in
  let filed =
    match cfg.corpus_dir with
    | None -> []
    | Some dir -> List.map (fun f -> Oracle.file_finding ~dir f) findings
  in
  ( {
      index;
      trial_seed = gen_seed;
      n_stages;
      n_gates;
      n_mutations;
      process;
      checks_run = outcome.Oracle.checks_run;
      violations = outcome.Oracle.violations;
      shrink_steps;
      filed;
    },
    findings )

let run ?(now = Sys.time) ?(on_trial = fun (_ : trial) -> ()) (cfg : config) =
  validate cfg;
  let t0 = now () in
  (* One macro table for the whole campaign: the Hier invariant's
     characterisations are shared across trials (a pure cache — every
     outcome is unchanged), and the final hit/miss split goes into the
     timing report. *)
  let macro_table = Macro.Table.create () in
  let rng = Rng.create ~seed:cfg.seed in
  let checks_run = ref 0 in
  let violations = ref 0 in
  let violating_trials = ref 0 in
  let shrink_steps = ref 0 in
  let filed = ref 0 in
  let findings = ref [] in
  for index = 0 to cfg.trials - 1 do
    let gen_seed = Int64.to_int (Rng.bits64 rng) land max_int in
    let trial, fs = run_one cfg ~macro_table ~index ~gen_seed in
    on_trial trial;
    checks_run := !checks_run + trial.checks_run;
    violations := !violations + List.length trial.violations;
    if trial.violations <> [] then incr violating_trials;
    shrink_steps := !shrink_steps + trial.shrink_steps;
    filed := !filed + List.length trial.filed;
    findings := List.rev_append fs !findings
  done;
  {
    schema_version;
    trials = cfg.trials;
    seed = cfg.seed;
    max_gates = cfg.max_gates;
    checks_run = !checks_run;
    checks_passed = !checks_run - !violations;
    violations = !violations;
    violating_trials = !violating_trials;
    shrink_steps = !shrink_steps;
    filed = !filed;
    findings = List.rev !findings;
    wall_seconds = now () -. t0;
    macro_hits = Macro.Table.hits macro_table;
    macro_misses = Macro.Table.misses macro_table;
  }

(* ---- rendering ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let violations_json violations =
  String.concat ","
    (List.map
       (fun (v : Oracle.violation) ->
         Printf.sprintf "{\"invariant\":\"%s\",\"detail\":\"%s\"}"
           (Oracle.invariant_name v.Oracle.invariant)
           (json_escape v.Oracle.detail))
       violations)

let trial_to_json t =
  Printf.sprintf
    "{\"schema_version\":%d,\"kind\":\"trial\",\"trial\":%d,\"seed\":%d,\"stages\":%d,\"gates\":%d,\"mutations\":%d,\"process\":\"%s\",\"checks_run\":%d,\"violations\":[%s],\"shrink_steps\":%d,\"filed\":[%s]}"
    schema_version t.index t.trial_seed t.n_stages t.n_gates t.n_mutations
    (json_escape t.process) t.checks_run
    (violations_json t.violations)
    t.shrink_steps
    (String.concat ","
       (List.map (fun p -> Printf.sprintf "\"%s\"" (json_escape p)) t.filed))

let summary_to_json ?(timings = false) s =
  (* The macro counters ride with the timing fields: like wall_seconds
     they describe the run's cost, not its verdict, and keeping them
     out of the default output preserves the v1 schema byte-for-byte
     (the smoke gate double-runs and diffs it). *)
  let timing =
    if timings then
      Printf.sprintf
        ",\"wall_seconds\":%.6f,\"macro_hits\":%d,\"macro_misses\":%d"
        s.wall_seconds s.macro_hits s.macro_misses
    else ""
  in
  Printf.sprintf
    "{\"schema_version\":%d,\"kind\":\"summary\",\"trials\":%d,\"seed\":%d,\"max_gates\":%d,\"checks_run\":%d,\"checks_passed\":%d,\"violations\":%d,\"violating_trials\":%d,\"shrink_steps\":%d,\"filed\":%d%s}"
    s.schema_version s.trials s.seed s.max_gates s.checks_run s.checks_passed
    s.violations s.violating_trials s.shrink_steps s.filed timing

let trial_to_text t =
  let base =
    Printf.sprintf "trial %d seed %d: %d stage(s), %d gate(s), %d mutation(s), process %s, %d check(s)"
      t.index t.trial_seed t.n_stages t.n_gates t.n_mutations t.process
      t.checks_run
  in
  match t.violations with
  | [] -> base ^ " ok"
  | vs ->
      let lines =
        List.map
          (fun (v : Oracle.violation) ->
            Printf.sprintf "  VIOLATION [%s] %s"
              (Oracle.invariant_name v.Oracle.invariant)
              v.Oracle.detail)
          vs
      in
      let filed =
        List.map (fun p -> Printf.sprintf "  filed %s" p) t.filed
      in
      String.concat "\n" ((base :: lines) @ filed)

let summary_to_text s =
  Printf.sprintf
    "fuzz: %d trial(s) seed %d: %d/%d check(s) passed, %d violation(s) in %d trial(s), %d shrink step(s), %d case(s) filed"
    s.trials s.seed s.checks_passed s.checks_run s.violations
    s.violating_trials s.shrink_steps s.filed

let first_error s =
  match s.findings with
  | [] -> None
  | f :: _ ->
      Some
        (Errors.violation
           ~invariant:(Oracle.invariant_name f.Oracle.violation.Oracle.invariant)
           (Printf.sprintf "%s (replay: spv fuzz --replay %d --max-gates %d)"
              f.Oracle.violation.Oracle.detail f.Oracle.found.Oracle.gen_seed
              f.Oracle.found.Oracle.max_gates))
