(** The typed error boundary for the whole library.

    Every failure mode of the public entry points — malformed input
    text, structurally invalid netlists, degenerate numerics, bad
    parameters — maps onto one constructor of {!t}, so callers (and
    the CLI, which turns each constructor into a distinct exit code)
    never have to pattern-match on exception strings. *)

type severity = Err | Warn

type diagnostic = {
  severity : severity;
  code : string;  (** stable kebab-case id, e.g. ["combinational-loop"] *)
  signal : string option;  (** offending signal/node name, when known *)
  line : int option;  (** 1-based source line, when known *)
  message : string;
}
(** One lint finding. *)

val diagnostic :
  ?severity:severity -> ?signal:string -> ?line:int -> code:string ->
  string -> diagnostic

val severity_to_string : severity -> string
val diagnostic_to_string : diagnostic -> string
val pp_diagnostic : Format.formatter -> diagnostic -> unit

type t =
  | Io_error of { path : string; message : string }
      (** The file could not be read at all. *)
  | Parse_error of { path : string option; line : int option; message : string }
      (** The text is not well-formed `.bench`. *)
  | Lint_error of { path : string option; diagnostics : diagnostic list }
      (** Parsed, but structurally unsound (loops, undriven wires, …). *)
  | Numeric_error of { where : string; message : string }
      (** A computation produced or would produce non-finite /
          meaningless values (NaN, non-PSD correlation, …). *)
  | Domain_error of { param : string; message : string }
      (** A caller-supplied parameter is outside its domain. *)
  | Internal_error of { where : string; message : string }
      (** An unexpected exception escaped — a bug, not bad input. *)
  | Certificate_refuted of { what : string; detail : string }
      (** A static certificate check ({!Spv_analysis.Certify})
          disproved the claim it was asked to verify — well-formed
          input whose answer is "no". *)
  | Oracle_violation of { invariant : string; detail : string }
      (** The differential fuzzing oracle ({!Oracle}) found a
          counterexample: a fuzzed (circuit, process, seed) triple on
          which an estimator invariant fails.  Like a refuted
          certificate, this is a definite answer, not a crash. *)
  | Deadline_exceeded of { where : string; budget_ms : int }
      (** A deadline-bounded request ([Spv_workload.Serve]) ran out of
          its per-request budget before completing.  The work done so
          far is discarded (no partial output); the input itself may
          be perfectly fine. *)

val to_string : t -> string
(** One line, no trailing newline — what the CLI prints on stderr. *)

val exit_code : t -> int
(** Distinct documented process exit code per constructor:
    Io 2, Parse 3, Lint 4, Numeric 5, Domain 6, Internal 7,
    Certificate_refuted 8, Oracle_violation 9, Deadline_exceeded 10. *)

val pp : Format.formatter -> t -> unit

(** Constructors. *)

val io : path:string -> string -> t
val parse : ?path:string -> ?line:int -> string -> t
val lint : ?path:string -> diagnostic list -> t
val numeric : where:string -> string -> t
val domain : param:string -> string -> t
val internal : where:string -> string -> t
val refuted : what:string -> string -> t
val violation : invariant:string -> string -> t
val deadline : where:string -> budget_ms:int -> t

val of_parse_error : ?path:string -> Spv_circuit.Bench_format.parse_error -> t
val of_sample_error : where:string -> Spv_stats.Descriptive.sample_error -> t
