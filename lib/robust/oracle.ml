module Fuzz = Spv_circuit.Fuzz
module Netlist = Spv_circuit.Netlist
module Bench_format = Spv_circuit.Bench_format
module Tech = Spv_process.Tech
module Rng = Spv_stats.Rng
module Gaussian = Spv_stats.Gaussian
module E = Spv_engine.Engine
module Interval = Spv_analysis.Interval
module Bounds = Spv_analysis.Bounds
module Affine_sta = Spv_analysis.Affine_sta
module Certify = Spv_analysis.Certify

type tolerances = { clark_abs : float; agree_z : float; cert_slack : float }

let default_tolerances = { clark_abs = 0.02; agree_z = 5.0; cert_slack = 0.005 }

type invariant =
  | Agreement
  | Envelope
  | Containment
  | Nesting
  | Certificate
  | Replay
  | Hier
  | Deriv
  | Escape

let invariant_name = function
  | Agreement -> "agreement"
  | Envelope -> "envelope"
  | Containment -> "containment"
  | Nesting -> "nesting"
  | Certificate -> "certificate"
  | Replay -> "replay"
  | Hier -> "hier"
  | Deriv -> "deriv"
  | Escape -> "escape"

let all_invariants =
  [
    Agreement;
    Envelope;
    Containment;
    Nesting;
    Certificate;
    Replay;
    Hier;
    Deriv;
    Escape;
  ]

let invariant_of_string s =
  List.find_opt (fun i -> invariant_name i = s) all_invariants

type violation = { invariant : invariant; detail : string }

let violation_to_error v =
  Errors.violation ~invariant:(invariant_name v.invariant) v.detail

(* Per-trial sampling budgets: small enough for a 200-trial smoke run,
   large enough that the agreement tolerances have teeth. *)
let mc_n = 2048
let adaptive_min = 512
let adaptive_max = 4096
let importance_n = 2048
let model_sample_n = 256
let gate_sample_n = 96
let gate_sample_exact_n = 64

let check_ctx ?(tolerances = default_tolerances) ?(invariants = all_invariants)
    ?macro_table ctx ~seed =
  let tol = tolerances in
  let run = ref 0 in
  let violations = ref [] in
  let record inv detail =
    violations := { invariant = inv; detail } :: !violations
  in
  let check inv cond detail =
    incr run;
    if not cond then record inv (detail ())
  in
  let want inv = List.mem inv invariants in
  (* Any exception escaping a check section on lint-legal input is a
     finding in its own right (the typed error boundary must hold). *)
  let guarded where f =
    match Checked.protect ~where f with
    | Ok () -> ()
    | Error err ->
        incr run;
        record Escape (Errors.to_string err)
  in
  let build where f =
    match Checked.protect ~where f with
    | Ok v -> Some v
    | Error err ->
        incr run;
        record Escape (Errors.to_string err);
        None
  in
  let g = E.Ctx.delay_distribution ctx in
  let mu = Gaussian.mu g in
  let sigma = Gaussian.sigma g in
  let degenerate = sigma <= 1e-12 in
  let targets =
    if degenerate then [| mu |]
    else [| mu; mu +. sigma; mu +. (2.0 *. sigma) |]
  in
  let t_tail = mu +. (4.0 *. sigma) in
  let gate_level = E.Ctx.gate_level ctx in
  let scale_slack =
    (* float-roundoff allowance on absolute delays (sampler STA vs
       corner STA accumulate in different orders) *)
    1e-6 *. Float.max 1.0 (Float.abs mu +. (8.0 *. sigma))
  in
  let need_estimates = want Agreement || want Envelope in
  let need_bounds =
    want Envelope || want Containment || want Nesting || want Certificate
  in
  let need_affine = want Envelope || want Containment || want Nesting in
  let estimates =
    if not need_estimates then None
    else
      build "oracle estimates" (fun () ->
          Array.map
            (fun t ->
              let clark = E.yield ~method_:E.Analytic_clark ctx ~t_target:t in
              let mc = E.yield ~method_:E.Mc ~seed ~n:mc_n ctx ~t_target:t in
              let adaptive =
                E.yield ~method_:E.Adaptive_mc ~seed ~min_samples:adaptive_min
                  ~max_samples:adaptive_max ctx ~t_target:t
              in
              let quad = E.yield ~method_:E.Quadrature ctx ~t_target:t in
              let indep =
                E.yield ~method_:E.Exact_independent ctx ~t_target:t
              in
              let imp =
                (* the importance estimator's documented contract is
                   rare-event (tail) probabilities; at body targets its
                   mean-shifted mixture is out of its domain (fuzzer
                   finding: ~0.998 vs a true 0.525 at t = mu) *)
                if degenerate || t < mu +. (1.99 *. sigma) then None
                else
                  Some
                    (E.yield ~method_:E.Importance ~seed ~n:importance_n ctx
                       ~t_target:t)
              in
              (t, clark, mc, adaptive, quad, indep, imp))
            targets)
  in
  let bounds =
    if not need_bounds then None else build "interval bounds" (fun () -> Bounds.of_ctx ctx)
  in
  let affine =
    if not need_affine then None
    else build "affine enclosures" (fun () -> Affine_sta.of_ctx ctx)
  in
  (* Agreement: every sampler agrees with plain MC within z combined
     standard errors (plus the documented Clark-family absolute
     allowance for the closed forms). *)
  (match estimates with
  | Some ests when want Agreement ->
      Array.iter
        (fun (t, clark, mc, adaptive, quad, indep, imp) ->
          let se = mc.E.std_error in
          let diff a b = Float.abs (a.E.value -. b.E.value) in
          let say name a =
            Printf.sprintf "%s %.6f vs mc %.6f (se %.3g) at t=%.6g" name
              a.E.value mc.E.value se t
          in
          check Agreement
            (diff clark mc <= tol.clark_abs +. (tol.agree_z *. se))
            (fun () -> say "clark" clark);
          check Agreement
            (diff adaptive mc
            <= (tol.agree_z *. (adaptive.E.std_error +. se)) +. 1e-9)
            (fun () -> say "adaptive" adaptive);
          check Agreement
            (diff quad mc <= tol.clark_abs +. (tol.agree_z *. se))
            (fun () -> say "quadrature" quad);
          (match imp with
          | Some i ->
              check Agreement
                (diff i mc
                <= (tol.agree_z *. (i.E.std_error +. se))
                   +. (0.5 *. tol.clark_abs))
                (fun () -> say "importance" i)
          | None -> ());
          if E.Ctx.nearly_independent ctx then
            check Agreement
              (diff indep mc <= (0.25 *. tol.clark_abs) +. (tol.agree_z *. se))
              (fun () -> say "independent" indep))
        ests
  | _ -> ());
  (* Envelope: every estimate sits inside the Fréchet / affine yield
     envelopes; the deep-tail loss (where plain MC is blind) sits
     inside the union-bound loss envelope. *)
  (match (estimates, bounds) with
  | Some ests, Some b when want Envelope ->
      let verdict name t v =
        check Envelope
          (Bounds.verdict_ok v)
          (fun () ->
            Printf.sprintf "%s estimate outside interval envelope at t=%.6g"
              name t)
      in
      Array.iter
        (fun (t, clark, mc, adaptive, quad, indep, imp) ->
          let each name est =
            verdict name t (Bounds.check ~t_target:t b est);
            match affine with
            | Some a ->
                check Envelope
                  (Bounds.verdict_ok (Affine_sta.check ~t_target:t a est))
                  (fun () ->
                    Printf.sprintf
                      "%s estimate outside affine envelope at t=%.6g" name t)
            | None -> ()
          in
          each "clark" clark;
          each "mc" mc;
          each "adaptive" adaptive;
          each "quadrature" quad;
          each "independent" indep;
          match imp with Some i -> each "importance" i | None -> ())
        ests;
      guarded "mean envelope" (fun () ->
          let m_clark = E.delay_mean ~method_:E.Analytic_clark ctx in
          let m_mc =
            E.delay_mean ~method_:E.Adaptive_mc ~seed ~min_samples:adaptive_min
              ~max_samples:adaptive_max ctx
          in
          List.iter
            (fun (name, m) ->
              check Envelope
                (Bounds.verdict_ok (Bounds.check b m))
                (fun () ->
                  Printf.sprintf "%s mean outside interval envelope" name);
              match affine with
              | Some a ->
                  check Envelope
                    (Bounds.verdict_ok (Affine_sta.check a m))
                    (fun () ->
                      Printf.sprintf "%s mean outside affine envelope" name)
              | None -> ())
            [ ("clark", m_clark); ("adaptive", m_mc) ]);
      if not degenerate then
        guarded "tail envelope" (fun () ->
            let yb = Bounds.yield_bounds b ~t_target:t_tail in
            let loss_lo = 1.0 -. Interval.hi yb in
            let loss_hi = 1.0 -. Interval.lo yb in
            (* Cone-guided: the analyzer's criticality-weighted mixture
               shifts to the uncapped design point, so the deep-tail
               estimate is accurate enough for a 2% relative envelope
               (the legacy mixture needed 5% here before the cones
               pass existed). *)
            Spv_analysis.Cones.install_engine_proposal ();
            let imp_loss =
              E.yield_loss ~method_:E.Importance ~proposal:E.Cone_guided ~seed
                ~n:importance_n ctx ~t_target:t_tail
            in
            let quad_loss =
              E.yield_loss ~method_:E.Quadrature ctx ~t_target:t_tail
            in
            (* In the tail the Fréchet envelope can collapse to a
               point (one stage dominates), so the sampling allowance
               must be relative, not the 0.02 absolute of the body
               checks. *)
            let slack = tol.agree_z *. imp_loss.E.std_error in
            check Envelope
              (imp_loss.E.value >= (loss_lo *. 0.98) -. slack -. 1e-15
              && imp_loss.E.value <= (loss_hi *. 1.02) +. slack +. 1e-15)
              (fun () ->
                Printf.sprintf
                  "importance tail loss %.3g outside union-bound envelope \
                   [%.3g, %.3g] at t=%.6g (proposal %s, ess %s)"
                  imp_loss.E.value loss_lo loss_hi t_tail
                  (match imp_loss.E.proposal with
                  | Some p -> E.proposal_used_name p
                  | None -> "-")
                  (match imp_loss.E.ess with
                  | Some s -> Printf.sprintf "%.1f" s
                  | None -> "-"));
            (* Clark-family closed forms are NOT held to the Fréchet
               floor here: moment-matching the max can shrink sigma_T
               below a dominant stage's sigma, so the Clark tail loss
               legitimately undershoots that stage's marginal loss
               (fuzzer finding: up to 40x at mu + 4 sigma).  Only the
               union-bound ceiling is part of their contract. *)
            check Envelope
              (quad_loss.E.value <= (loss_hi *. 1.25) +. 1e-15)
              (fun () ->
                Printf.sprintf
                  "quadrature tail loss %.3g above union-bound ceiling %.3g \
                   at t=%.6g"
                  quad_loss.E.value loss_hi t_tail))
  | _ -> ());
  (* Containment: sampled pipeline delays fall inside the static
     enclosures. *)
  (match bounds with
  | Some b when want Containment ->
      guarded "model containment" (fun () ->
          let samples = E.sample_delays ~seed ctx ~n:model_sample_n in
          let against name iv =
            let outside = Interval.mem_all ~slack:scale_slack iv samples in
            check Containment (outside = 0) (fun () ->
                Printf.sprintf "%d/%d model delay samples outside %s enclosure"
                  outside model_sample_n name)
          in
          against "interval" b.Bounds.delay;
          match affine with
          | Some a -> against "affine" a.Affine_sta.delay
          | None -> ());
      if gate_level then
        guarded "gate containment" (fun () ->
            let lin =
              E.gate_level_delays ~exact:false ~seed ctx ~n:gate_sample_n
            in
            let exact =
              E.gate_level_delays ~exact:true ~seed ctx ~n:gate_sample_exact_n
            in
            let against name iv samples =
              let outside = Interval.mem_all ~slack:scale_slack iv samples in
              check Containment (outside = 0) (fun () ->
                  Printf.sprintf
                    "%d/%d gate-level delay samples outside %s enclosure"
                    outside (Array.length samples) name)
            in
            against "interval" b.Bounds.delay lin;
            against "interval(exact)" b.Bounds.delay exact;
            match affine with
            | Some a -> against "affine" a.Affine_sta.delay lin
            | None -> ())
  | _ -> ());
  (* Nesting: the affine refinement is contained in the interval
     baseline — delay, mean, per-stage, and the yield envelopes. *)
  (match (bounds, affine) with
  | Some b, Some a when want Nesting ->
      let subset ?(eps = scale_slack) name inner outer =
        check Nesting
          (Interval.lo inner >= Interval.lo outer -. eps
          && Interval.hi inner <= Interval.hi outer +. eps)
          (fun () ->
            Printf.sprintf "affine %s %s not nested in interval %s" name
              (Interval.to_string inner)
              (Interval.to_string outer))
      in
      subset "delay" a.Affine_sta.delay b.Bounds.delay;
      subset "mean" a.Affine_sta.mean b.Bounds.mean;
      Array.iteri
        (fun i st ->
          subset
            (Printf.sprintf "stage %d" i)
            st.Affine_sta.enclosure b.Bounds.stages.(i).Bounds.total)
        a.Affine_sta.stages;
      Array.iter
        (fun t ->
          subset ~eps:1e-12
            (Printf.sprintf "yield bounds at t=%.6g" t)
            (Affine_sta.yield_bounds a ~t_target:t)
            (Bounds.yield_bounds b ~t_target:t))
        targets
  | _ -> ());
  (* Certificate soundness: Proved => MC confirms at matched
     confidence; Refuted => the counterexample stage's marginal
     reproduces the refutation and MC respects the Fréchet upper
     bound. *)
  (if want Certificate then
     let probe t_cert =
       guarded
         (Printf.sprintf "certificate at t=%.6g" t_cert)
         (fun () ->
           let y_target = 0.9 in
           let cert = Certify.of_ctx ~t_target:t_cert ~yield:y_target ctx in
           let mc () =
             E.yield ~method_:E.Mc ~seed ~n:mc_n ctx ~t_target:t_cert
           in
           match cert.Certify.status with
           | Certify.Proved ->
               let m = mc () in
               check Certificate
                 (m.E.value
                 >= y_target
                    -. (tol.agree_z *. m.E.std_error)
                    -. tol.cert_slack)
                 (fun () ->
                   Printf.sprintf
                     "proved yield >= %.2f at t=%.6g but mc measured %.4f (se \
                      %.3g)"
                     y_target t_cert m.E.value m.E.std_error)
           | Certify.Refuted -> (
               match cert.Certify.counterexample with
               | None ->
                   check Certificate false (fun () ->
                       "refuted certificate carries no counterexample stage")
               | Some sc ->
                   (match bounds with
                   | Some b ->
                       let marg = b.Bounds.marginals.(sc.Certify.stage) in
                       let y = Gaussian.cdf marg t_cert in
                       check Certificate
                         (y < y_target +. 1e-9)
                         (fun () ->
                           Printf.sprintf
                             "counterexample stage %d marginal yield %.4f does \
                              not reproduce refutation of %.2f at t=%.6g"
                             sc.Certify.stage y y_target t_cert)
                   | None -> ());
                   let m = mc () in
                   check Certificate
                     (m.E.value
                     <= cert.Certify.min_yield
                        +. (tol.agree_z *. m.E.std_error)
                        +. tol.cert_slack)
                     (fun () ->
                       Printf.sprintf
                         "mc yield %.4f exceeds Fréchet upper bound %.4f of \
                          the refuted certificate at t=%.6g"
                         m.E.value cert.Certify.min_yield t_cert))
           | Certify.Inconclusive -> ())
     in
     probe (mu +. (3.0 *. sigma));
     if not degenerate then probe mu);
  (* Replay: bit-identical results across jobs and across repeated
     runs at the same (seed, shards). *)
  (if want Replay then
     let bits = Int64.bits_of_float in
     let same_estimate a b =
       bits a.E.value = bits b.E.value
       && bits a.E.std_error = bits b.E.std_error
       && a.E.n_samples = b.E.n_samples
     in
     let same_samples a b =
       Array.length a = Array.length b
       && Array.for_all2 (fun x y -> bits x = bits y) a b
     in
     guarded "replay" (fun () ->
         let t = mu in
         let m1 = E.yield ~method_:E.Mc ~jobs:1 ~seed ~n:mc_n ctx ~t_target:t in
         let m3 = E.yield ~method_:E.Mc ~jobs:3 ~seed ~n:mc_n ctx ~t_target:t in
         check Replay (same_estimate m1 m3) (fun () ->
             Printf.sprintf "mc yield differs across jobs: %.17g vs %.17g"
               m1.E.value m3.E.value);
         let a1 =
           E.yield ~method_:E.Adaptive_mc ~jobs:1 ~seed
             ~min_samples:adaptive_min ~max_samples:adaptive_max ctx
             ~t_target:t
         in
         let a4 =
           E.yield ~method_:E.Adaptive_mc ~jobs:4 ~seed
             ~min_samples:adaptive_min ~max_samples:adaptive_max ctx
             ~t_target:t
         in
         check Replay (same_estimate a1 a4) (fun () ->
             Printf.sprintf
               "adaptive mc yield differs across jobs: %.17g vs %.17g"
               a1.E.value a4.E.value);
         let s1 = E.sample_delays ~seed ctx ~n:128 in
         let s2 = E.sample_delays ~seed ctx ~n:128 in
         check Replay (same_samples s1 s2) (fun () ->
             "model delay sampling is not repeatable at fixed (seed, shards)");
         if gate_level then begin
           let g1 =
             E.gate_level_delays ~exact:false ~jobs:1 ~seed ctx ~n:32
           in
           let g2 =
             E.gate_level_delays ~exact:false ~jobs:2 ~seed ctx ~n:32
           in
           check Replay (same_samples g1 g2) (fun () ->
               "gate-level delay samples differ across jobs")
         end));
  (* Hier: the macro-composed model agrees with the flat model within
     the estimate's reported [hier_bound] on every fuzzed netlist.
     Closed forms must match exactly at the bound (it IS the gap, and
     the flat reference inside the hierarchical context is built from
     the same memoised per-stage analyses as the flat context);
     Monte-Carlo on the macro model's MVN additionally pays its own
     and the flat run's sampling noise. *)
  (if want Hier && gate_level then
     guarded "hier" (fun () ->
         let n = E.Ctx.n_stages ctx in
         let nets = Array.init n (E.Ctx.netlist ctx) in
         let hctx =
           E.Ctx.of_circuits ~mode:E.Hierarchical ?macro_table
             ~output_load:(E.Ctx.output_load ctx) ~pitch:(E.Ctx.pitch ctx)
             ?ff:(E.Ctx.flipflop ctx) (E.Ctx.tech ctx) nets
         in
         let bound e =
           match e.E.hier_bound with
           | Some b -> b
           | None -> Float.neg_infinity (* hier estimate must carry one *)
         in
         Array.iter
           (fun t ->
             List.iter
               (fun (name, method_) ->
                 let f = E.yield ~method_ ctx ~t_target:t in
                 let h = E.yield ~method_ hctx ~t_target:t in
                 check Hier
                   (Float.abs (f.E.value -. h.E.value) <= bound h +. 1e-12)
                   (fun () ->
                     Printf.sprintf
                       "%s hier yield %.9g vs flat %.9g exceeds bound %.3g \
                        at t=%.6g"
                       name h.E.value f.E.value (bound h) t))
               [
                 ("clark", E.Analytic_clark);
                 ("independent", E.Exact_independent);
               ])
           targets;
         let t = targets.(Array.length targets - 1) in
         let fm = E.yield ~method_:E.Mc ~seed ~n:mc_n ctx ~t_target:t in
         let hm = E.yield ~method_:E.Mc ~seed ~n:mc_n hctx ~t_target:t in
         check Hier
           (Float.abs (fm.E.value -. hm.E.value)
           <= bound hm
              +. (tol.agree_z *. (fm.E.std_error +. hm.E.std_error))
              +. (0.5 *. tol.clark_abs))
           (fun () ->
             Printf.sprintf
               "mc hier yield %.6f vs flat %.6f exceeds bound %.3g + noise \
                at t=%.6g"
               hm.E.value fm.E.value (bound hm) t);
         let fmean = E.delay_mean ~method_:E.Analytic_clark ctx in
         let hmean = E.delay_mean ~method_:E.Analytic_clark hctx in
         check Hier
           (Float.abs (fmean.E.value -. hmean.E.value)
           <= bound hmean +. 1e-12)
           (fun () ->
             Printf.sprintf
               "clark hier mean %.9g vs flat %.9g exceeds bound %.3g"
               hmean.E.value fmean.E.value (bound hmean))));
  (* Deriv: certified sensitivity enclosures are sound against the
     concrete model — the value interval contains the concrete stage
     moments at the box centre, and (mean value theorem) every central
     finite difference with a stencil inside the box lies in the
     derivative interval.  Decertified enclosures report the full
     line, so the derivative side is structurally sound there; the
     value side is checked either way. *)
  (if want Deriv && gate_level then
     let module Sens = Spv_analysis.Sensitivity in
     let module Ssta = Spv_circuit.Ssta in
     let module Gd = Spv_process.Gate_delay in
     guarded "deriv" (fun () ->
         let tech = E.Ctx.tech ctx in
         let output_load = E.Ctx.output_load ctx in
         let ff = E.Ctx.flipflop ctx in
         let n = E.Ctx.n_stages ctx in
         let stage_list = if n = 1 then [ 0 ] else [ 0; n - 1 ] in
         List.iter
           (fun s ->
             let net = E.Ctx.netlist ctx s in
             let gids = Netlist.gate_ids net in
             let n_g = Array.length gids in
             let knobs =
               if n_g <= 2 then Array.to_list gids
               else [ gids.(0); gids.(n_g / 2); gids.(n_g - 1) ]
             in
             List.iter
               (fun g ->
                 let x = Netlist.size net g in
                 let h = 0.05 *. x in
                 let box =
                   Interval.make ~lo:(x -. (2.0 *. h)) ~hi:(x +. (2.0 *. h))
                 in
                 let sens =
                   Sens.ctx_stage ctx ~stage:s ~param:(Sens.Size g) ~box
                 in
                 let moments_at v =
                   Netlist.set_size net g v;
                   let a = Ssta.analyse_stage ~output_load ?ff tech net in
                   Netlist.set_size net g x;
                   (a.Ssta.total.Gd.nominal, Gd.total_sigma a.Ssta.total)
                 in
                 let mu0, sg0 = moments_at x in
                 let mu_p, sg_p = moments_at (x +. h) in
                 let mu_m, sg_m = moments_at (x -. h) in
                 let fd p m = (p -. m) /. (2.0 *. h) in
                 let say what iv v =
                   Printf.sprintf
                     "stage %d gate %d: %s %.9g outside enclosure %s (box \
                      [%.4g, %.4g])"
                     s g what v (Interval.to_string iv) (Interval.lo box)
                     (Interval.hi box)
                 in
                 let value_slack = 1e-9 *. Float.max 1.0 (Float.abs mu0) in
                 let deriv_slack f0 =
                   (1e-10 *. (Float.abs f0 +. 1.0) /. h) +. 1e-9
                 in
                 let enc_check what (e : Sens.enclosure) v0 d =
                   check Deriv
                     (Interval.contains ~slack:value_slack e.Sens.value v0)
                     (fun () -> say (what ^ " value") e.Sens.value v0);
                   if e.Sens.certified then
                     check Deriv
                       (Interval.contains ~slack:(deriv_slack v0) e.Sens.deriv
                          d)
                       (fun () -> say (what ^ " central FD") e.Sens.deriv d)
                 in
                 enc_check "mu" sens.Sens.s_mu mu0 (fd mu_p mu_m);
                 enc_check "sigma" sens.Sens.s_sigma sg0 (fd sg_p sg_m);
                 (* Yield through the Clark mirror, against the
                    closed-form estimator re-evaluated per stencil
                    point via refresh_stage. *)
                 if (not degenerate) && g = gids.(0) then begin
                   let t = mu +. sigma in
                   let enc =
                     Sens.ctx_yield ctx ~model:Sens.Clark ~stage:s
                       ~param:(Sens.Size g) ~box ~t_target:t
                   in
                   let yield_at v =
                     Netlist.set_size net g v;
                     let c = E.Ctx.refresh_stage ctx s in
                     let y =
                       (E.yield ~method_:E.Analytic_clark c ~t_target:t)
                         .E.value
                     in
                     Netlist.set_size net g x;
                     y
                   in
                   let y0 = yield_at x in
                   let y_p = yield_at (x +. h) in
                   let y_m = yield_at (x -. h) in
                   enc_check "clark yield" enc y0 (fd y_p y_m)
                 end)
               knobs)
           stage_list));
  (!run, List.rev !violations)

(* ---- fuzz cases ----------------------------------------------------- *)

type case = { gen_seed : int; max_gates : int }

type materialised = {
  circuits : Netlist.t array;
  process : Fuzz.process;
  n_mutations : int;
}

let materialise { gen_seed; max_gates } =
  let streams = Rng.split (Rng.create ~seed:gen_seed) 3 in
  let config = { Fuzz.default_config with Fuzz.max_gates } in
  let circuits = ref (Fuzz.generate ~config streams.(0)) in
  let n_mutations = Rng.int streams.(1) ~bound:4 in
  for _ = 1 to n_mutations do
    circuits := Fuzz.mutate ~config streams.(1) !circuits
  done;
  let process = Fuzz.random_process streams.(2) in
  { circuits = !circuits; process; n_mutations }

let ctx_of circuits process =
  E.Ctx.of_circuits (Fuzz.apply_process Tech.bptm70 process) circuits

type outcome = { case : case; checks_run : int; violations : violation list }

let run_case ?tolerances ?invariants ?macro_table ~check_seed case =
  match
    Checked.protect ~where:"fuzz case" (fun () ->
        let m = materialise case in
        let ctx = ctx_of m.circuits m.process in
        check_ctx ?tolerances ?invariants ?macro_table ctx ~seed:check_seed)
  with
  | Ok (checks_run, violations) -> { case; checks_run; violations }
  | Error err ->
      {
        case;
        checks_run = 1;
        violations = [ { invariant = Escape; detail = Errors.to_string err } ];
      }

(* ---- shrinking ------------------------------------------------------ *)

let still_violates ~tolerances ~invariant ~check_seed circuits process =
  let invariants =
    (* the Escape invariant only fires as the catcher of the other
       sections, so shrinking an escape runs everything *)
    if invariant = Escape then all_invariants else [ invariant ]
  in
  match
    Checked.protect ~where:"shrink candidate" (fun () ->
        let ctx = ctx_of circuits process in
        check_ctx ?tolerances ~invariants ctx ~seed:check_seed)
  with
  | Ok (_, vs) -> List.exists (fun v -> v.invariant = invariant) vs
  | Error _ -> invariant = Escape

(* Remove gate [g], rewiring its fanouts (and output role) to its
   first fanin; [None] when the removal is structurally impossible
   (last gate, or an output would become a primary input). *)
let remove_gate net g =
  match Netlist.node net g with
  | Netlist.Primary_input _ -> None
  | Netlist.Gate { fanin; _ } ->
      if Array.length (Netlist.gate_ids net) <= 1 then None
      else
        let f0 = fanin.(0) in
        let subst i = if i = g then f0 else if i > g then i - 1 else i in
        let orig_of i = if i >= g then i + 1 else i in
        let outputs = Array.map subst (Netlist.outputs net) in
        let output_ok =
          Array.for_all (fun o -> Netlist.is_gate net (orig_of o)) outputs
        in
        if not output_ok then None
        else begin
          let seen = Hashtbl.create 8 in
          let outputs =
            Array.of_list
              (List.filter
                 (fun o ->
                   if Hashtbl.mem seen o then false
                   else begin
                     Hashtbl.add seen o ();
                     true
                   end)
                 (Array.to_list outputs))
          in
          let n = Netlist.n_nodes net in
          let sizes = Netlist.sizes_snapshot net in
          let nodes' = ref [] and sizes' = ref [] in
          for i = 0 to n - 1 do
            if i <> g then begin
              (match Netlist.node net i with
              | Netlist.Primary_input _ as p -> nodes' := p :: !nodes'
              | Netlist.Gate { kind; fanin } ->
                  nodes' :=
                    Netlist.Gate { kind; fanin = Array.map subst fanin }
                    :: !nodes');
              sizes' := sizes.(i) :: !sizes'
            end
          done;
          try
            Some
              (Fuzz.promote_dangling
                 (Netlist.make ~name:(Netlist.name net)
                    ~nodes:(Array.of_list (List.rev !nodes'))
                    ~outputs
                    ~sizes:(Array.of_list (List.rev !sizes'))))
          with Invalid_argument _ -> None
        end

(* Collapse all of gate [g]'s fanins onto its first fanin; [None] when
   already uniform. *)
let collapse_fanins net g =
  match Netlist.node net g with
  | Netlist.Primary_input _ -> None
  | Netlist.Gate { kind; fanin } ->
      if Array.for_all (fun f -> f = fanin.(0)) fanin then None
      else
        let n = Netlist.n_nodes net in
        let nodes' = ref [] in
        for i = 0 to n - 1 do
          let node =
            if i = g then
              Netlist.Gate
                { kind; fanin = Array.make (Array.length fanin) fanin.(0) }
            else Netlist.node net i
          in
          nodes' := node :: !nodes'
        done;
        Some
          (Fuzz.promote_dangling
             (Netlist.make ~name:(Netlist.name net)
                ~nodes:(Array.of_list (List.rev !nodes'))
                ~outputs:(Netlist.outputs net)
                ~sizes:(Netlist.sizes_snapshot net)))

let shrink ?tolerances ?(max_attempts = 300) ~invariant ~check_seed circuits
    process =
  let attempts = ref 0 in
  let steps = ref 0 in
  let circuits = ref (Array.map Netlist.copy circuits) in
  let process = ref process in
  let budget () = !attempts < max_attempts in
  let try_candidate cs p =
    budget ()
    && begin
         incr attempts;
         still_violates ~tolerances ~invariant ~check_seed cs p
       end
  in
  let accept cs p =
    circuits := cs;
    process := p;
    incr steps
  in
  let changed = ref true in
  while !changed && budget () do
    changed := false;
    (* 1. remove whole stages (last first) *)
    let s = ref (Array.length !circuits - 1) in
    while !s >= 0 && budget () do
      if Array.length !circuits > 1 then begin
        let cand =
          Array.of_list
            (List.filteri (fun i _ -> i <> !s) (Array.to_list !circuits))
        in
        if try_candidate cand !process then begin
          accept cand !process;
          changed := true
        end
      end;
      decr s
    done;
    (* 2. remove gates, highest id first *)
    for st = 0 to Array.length !circuits - 1 do
      let continue = ref true in
      while !continue && budget () do
        continue := false;
        let net = !circuits.(st) in
        let gids = Netlist.gate_ids net in
        let i = ref (Array.length gids - 1) in
        while !i >= 0 && budget () && not !continue do
          (match remove_gate net gids.(!i) with
          | Some net' ->
              let cand = Array.copy !circuits in
              cand.(st) <- net';
              if try_candidate cand !process then begin
                accept cand !process;
                changed := true;
                continue := true
              end
          | None -> ());
          decr i
        done
      done
    done;
    (* 3. collapse fanins (kills reconvergent edges) *)
    for st = 0 to Array.length !circuits - 1 do
      let net = !circuits.(st) in
      let gids = Netlist.gate_ids net in
      let i = ref (Array.length gids - 1) in
      while !i >= 0 && budget () do
        (match collapse_fanins !circuits.(st) gids.(!i) with
        | Some net' ->
            let cand = Array.copy !circuits in
            cand.(st) <- net';
            if try_candidate cand !process then begin
              accept cand !process;
              changed := true
            end
        | None -> ());
        decr i
      done
    done;
    (* 4. drop process overrides *)
    List.iter
      (fun strip ->
        let p' = strip !process in
        if p' <> !process && budget () && try_candidate !circuits p' then begin
          accept !circuits p';
          changed := true
        end)
      [
        (fun p -> { p with Fuzz.inter_vth_mv = None });
        (fun p -> { p with Fuzz.random_vth_mv = None });
        (fun p -> { p with Fuzz.sys_vth_mv = None });
        (fun p -> { p with Fuzz.leff_rel_inter = None });
      ]
  done;
  (!circuits, !process, !steps)

(* ---- corpus filing -------------------------------------------------- *)

type finding = {
  found : case;
  check_seed : int;
  violation : violation;
  circuits : Netlist.t array;
  process : Fuzz.process;
  shrink_steps : int;
}

let one_line s =
  String.concat "; "
    (List.filter (fun x -> x <> "") (String.split_on_char '\n' s))

let finding_to_string f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "spv-fuzz-case v1\n";
  Printf.bprintf buf "invariant %s\n" (invariant_name f.violation.invariant);
  Printf.bprintf buf "gen_seed %d\n" f.found.gen_seed;
  Printf.bprintf buf "max_gates %d\n" f.found.max_gates;
  Printf.bprintf buf "check_seed %d\n" f.check_seed;
  Printf.bprintf buf "shrink_steps %d\n" f.shrink_steps;
  Printf.bprintf buf "process %s\n" (Fuzz.process_to_string f.process);
  Printf.bprintf buf "detail %s\n" (one_line f.violation.detail);
  Array.iteri
    (fun i net ->
      Printf.bprintf buf "stage %d\n" i;
      Buffer.add_string buf (Bench_format.to_string net))
    f.circuits;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let finding_of_string text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  match lines with
  | magic :: rest when String.trim magic = "spv-fuzz-case v1" ->
      let header = Hashtbl.create 8 in
      let rec read_header = function
        | [] -> Error "missing stage sections"
        | line :: rest ->
            let line' = String.trim line in
            if line' = "" then read_header rest
            else
              let key, value =
                match String.index_opt line' ' ' with
                | None -> (line', "")
                | Some i ->
                    ( String.sub line' 0 i,
                      String.trim
                        (String.sub line' (i + 1) (String.length line' - i - 1))
                    )
              in
              if key = "stage" then Ok (line :: rest)
              else begin
                Hashtbl.replace header key value;
                read_header rest
              end
      in
      let* rest = read_header rest in
      let field k =
        match Hashtbl.find_opt header k with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing header field %S" k)
      in
      let int_field k =
        let* v = field k in
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad integer in header field %S" k)
      in
      let* inv_name = field "invariant" in
      let* invariant =
        match invariant_of_string inv_name with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "unknown invariant %S" inv_name)
      in
      let* gen_seed = int_field "gen_seed" in
      let* max_gates = int_field "max_gates" in
      let* check_seed = int_field "check_seed" in
      let* shrink_steps = int_field "shrink_steps" in
      let* process_text = field "process" in
      let* process = Fuzz.process_of_string process_text in
      let detail =
        match Hashtbl.find_opt header "detail" with Some d -> d | None -> ""
      in
      (* split the remainder into per-stage bench chunks *)
      let stages = ref [] in
      let current = Buffer.create 256 in
      let in_stage = ref false in
      let flush () =
        if !in_stage then stages := Buffer.contents current :: !stages;
        Buffer.clear current
      in
      List.iter
        (fun line ->
          let t = String.trim line in
          if String.length t >= 6 && String.sub t 0 6 = "stage " then begin
            flush ();
            in_stage := true
          end
          else if t = "end" then flush ()
          else if !in_stage then begin
            Buffer.add_string current line;
            Buffer.add_char current '\n'
          end)
        rest;
      let chunks = List.rev !stages in
      if chunks = [] then Error "no stage sections"
      else
        let* circuits =
          List.fold_left
            (fun acc (i, chunk) ->
              let* acc = acc in
              match
                Bench_format.of_string_result
                  ~name:(Printf.sprintf "fz%d" i) chunk
              with
              | Ok net -> Ok (net :: acc)
              | Error e ->
                  Error
                    (Printf.sprintf "stage %d: %s" i
                       (Bench_format.parse_error_to_string e)))
            (Ok [])
            (List.mapi (fun i c -> (i, c)) chunks)
        in
        Ok
          {
            found = { gen_seed; max_gates };
            check_seed;
            violation = { invariant; detail };
            circuits = Array.of_list (List.rev circuits);
            process;
            shrink_steps;
          }
  | _ -> Error "not a spv-fuzz-case v1 file"

let file_finding ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (Printf.sprintf "fuzz-%s-seed%d.repro"
         (invariant_name f.violation.invariant)
         f.found.gen_seed)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (finding_to_string f));
  path
