(** Numerical health guards: finiteness post-conditions, correlation
    clamping, and PSD repair of user-supplied correlation matrices.

    Philosophy: degeneracy that is plausibly floating-point noise (rho
    at 1 + 1e-12, a correlation matrix with a -1e-9 eigenvalue) is
    repaired and {e reported}; anything worse is a typed
    {!Errors.Numeric_error} — never a crash, never a silent NaN. *)

val finite : where:string -> float -> (float, Errors.t) result
(** Post-condition: the value is finite; [where] names the computation
    stage for the diagnostic. *)

val finite_array : where:string -> float array -> (float array, Errors.t) result

val finite_gaussian :
  where:string -> Spv_stats.Gaussian.t -> (Spv_stats.Gaussian.t, Errors.t) result

val clamp_rho :
  ?tol:float -> where:string -> float -> (float * bool, Errors.t) result
(** Correlations within [tol] (default 1e-6) outside [-1, 1] — the
    signature of accumulated rounding in e.g.
    {!Spv_core.Clark.correlation_with_max} — are clamped; the boolean
    reports whether clamping happened.  NaN or a gross violation is a
    typed error. *)

type psd_report = {
  repaired : bool;
  min_eigenvalue : float;  (** of the {e input} matrix *)
  max_abs_delta : float;  (** max entrywise perturbation applied *)
  frobenius_delta : float;  (** Frobenius norm of the perturbation *)
}

val pp_psd_report : Format.formatter -> psd_report -> unit

val repair_correlation :
  ?eps:float ->
  Spv_stats.Matrix.t ->
  (Spv_stats.Matrix.t * psd_report, Errors.t) result
(** Eigenvalue clipping with shrinkage back to unit diagonal: clip the
    spectrum at a tiny positive floor, reconstruct [V D+ V^T], rescale
    to a correlation matrix, and report the perturbation magnitude.
    A matrix that is PSD up to [eps] (default 1e-10) is returned
    unchanged with [repaired = false].  Non-square, non-symmetric,
    non-finite, wild-entry or unrepairable inputs are typed errors. *)

val mvn_create :
  mus:float array ->
  sigmas:float array ->
  corr:Spv_stats.Matrix.t ->
  (Spv_stats.Mvn.t * psd_report, Errors.t) result
(** {!Spv_stats.Mvn.create} behind the guards: validates lengths and
    finiteness, rejects negative sigmas, repairs the correlation when
    needed (check [psd_report.repaired] to warn the user). *)
