(** Differential testing oracle over the estimator stack.

    Runs one (circuit pipeline, process scenario, seed) triple through
    every estimator the engine offers plus the static analysis stack
    ({!Spv_analysis.Bounds}, {!Spv_analysis.Affine_sta},
    {!Spv_analysis.Certify}) and checks the cross-cutting invariants
    that must hold for {e any} lint-legal input:

    - {b Agreement} — the paper's Clark-vs-MC correspondence (Figs.
      4–5): every sampling estimator agrees with plain Monte-Carlo
      within [z] combined standard errors plus the documented absolute
      allowance for Clark-family closed forms.  Each estimator is held
      to its {e documented} contract: the importance estimator is
      rare-event machinery, so it is checked only on tail-side targets
      ([>= mu + 2 sigma] and the [mu + 4 sigma] deep tail, where plain
      MC is blind) — two contract limits the fuzzer itself surfaced
      (importance at [t = mu] returning ~0.998 against a true 0.525)
      are documented in DESIGN.md.
    - {b Envelope} — every estimate lies inside the Fréchet /
      affine yield envelopes ({!Spv_analysis.Bounds.check},
      {!Spv_analysis.Affine_sta.check}); the importance deep-tail loss
      lies inside the union-bound loss envelope, while Clark-family
      closed forms are only held to its ceiling there (moment-matching
      the max can shrink [sigma_T] below a dominant stage's sigma, so
      their tail loss legitimately undershoots the Fréchet floor).
    - {b Containment} — model-level MVN delay samples and gate-level
      Monte-Carlo delays (linearised and exact alpha-power) fall
      inside the interval/affine delay enclosures.
    - {b Nesting} — the affine enclosures (delay, mean, per-stage,
      yield bounds) are contained in their interval counterparts.
    - {b Certificate} — {!Spv_analysis.Certify} soundness: [Proved]
      implies MC confirms the yield at matched confidence; [Refuted]
      implies the counterexample stage's marginal reproduces the
      refutation and MC respects the Fréchet upper bound.
    - {b Replay} — bit-identical results across [jobs] and across
      repeated runs at the same [(seed, shards)].
    - {b Hier} — the hierarchical (block-macro) model agrees with the
      flat model within the estimate's reported
      {!Spv_engine.Engine.estimate.hier_bound} on every fuzzed
      netlist: exactly at the bound for the closed forms (the bound
      {e is} the model gap), plus combined sampling noise for
      Monte-Carlo on the macro model's MVN.
    - {b Deriv} — certified {!Spv_analysis.Sensitivity} enclosures are
      sound against the concrete model: the value interval contains
      the concrete stage moments (and Clark yield), and every central
      finite difference with a stencil inside the declared size box
      lies in the derivative interval.
    - {b Escape} — any exception escaping one of the checks on
      lint-legal input is itself a violation (the typed error boundary
      must hold).

    A violated invariant is a {e definite} counterexample, reported as
    {!Errors.Oracle_violation} (exit code 9) by the CLI.  Violations
    are delta-debug shrunk ({!shrink}) and can be filed as
    self-contained repro cases ({!file_finding}) with the generator
    seed embedded. *)

module Fuzz = Spv_circuit.Fuzz

(** {1 Tolerances} *)

type tolerances = {
  clark_abs : float;
      (** absolute allowance for Clark-family closed forms vs MC
          (matches {!Spv_analysis.Bounds.check}'s 0.02 default) *)
  agree_z : float;
      (** the [z] multiplier on combined standard errors in every
          sampling-noise allowance (default 5.0) *)
  cert_slack : float;
      (** extra absolute slack when MC confirms a [Proved]
          certificate (default 0.005) *)
}

val default_tolerances : tolerances

(** {1 Invariants} *)

type invariant =
  | Agreement
  | Envelope
  | Containment
  | Nesting
  | Certificate
  | Replay
  | Hier
  | Deriv
  | Escape

val invariant_name : invariant -> string
val invariant_of_string : string -> invariant option
val all_invariants : invariant list

type violation = { invariant : invariant; detail : string }

val violation_to_error : violation -> Errors.t

(** {1 Checking} *)

val check_ctx :
  ?tolerances:tolerances -> ?invariants:invariant list ->
  ?macro_table:Spv_circuit.Macro.Table.t ->
  Spv_engine.Engine.Ctx.t -> seed:int -> int * violation list
(** Run the selected invariants (default: all) against one context.
    Returns [(checks_run, violations)].  [seed] drives every sampling
    estimator; equal [(ctx, seed)] give bit-identical outcomes
    ([macro_table], when given, shares Hier's macro characterisations
    across calls — a pure cache, so outcomes are unchanged; its
    hit/miss counters feed the fuzz campaign's [--timings] report).
    Exceptions escaping any individual check are caught and recorded
    as [Escape] violations — [check_ctx] itself only raises on
    unusable arguments (e.g. a moments-only context). *)

(** {1 Fuzz cases}

    A case is fully determined by [(gen_seed, max_gates)]: circuits,
    mutations and the process scenario are all re-derived from
    splitmix64 streams split off the seed, which is what makes a
    printed seed a complete repro. *)

type case = { gen_seed : int; max_gates : int }

type materialised = {
  circuits : Spv_circuit.Netlist.t array;
  process : Fuzz.process;
  n_mutations : int;
}

val materialise : case -> materialised
(** Deterministically rebuild the fuzzed pipeline: generate, apply
    0–3 mutations, draw the process scenario. *)

val ctx_of :
  Spv_circuit.Netlist.t array -> Fuzz.process -> Spv_engine.Engine.Ctx.t
(** Engine context for a (circuits, process) pair over the default
    [bptm70] technology. *)

type outcome = {
  case : case;
  checks_run : int;
  violations : violation list;
}

val run_case :
  ?tolerances:tolerances -> ?invariants:invariant list ->
  ?macro_table:Spv_circuit.Macro.Table.t -> check_seed:int ->
  case -> outcome
(** {!materialise} + {!ctx_of} + {!check_ctx}.  Exceptions during
    materialisation/context build are recorded as [Escape]
    violations, never raised. *)

(** {1 Shrinking} *)

val shrink :
  ?tolerances:tolerances -> ?max_attempts:int -> invariant:invariant ->
  check_seed:int -> Spv_circuit.Netlist.t array -> Fuzz.process ->
  Spv_circuit.Netlist.t array * Fuzz.process * int
(** Delta-debug a violating (circuits, process) pair: remove stages,
    then gates (highest id first, fanouts rewired to the gate's first
    fanin), then collapse fanins, then drop process overrides —
    re-checking the same invariant after every candidate step and
    keeping only steps that still violate.  Deterministic; at most
    [max_attempts] (default 300) re-checks.  Returns the shrunk pair
    and the number of accepted shrink steps. *)

(** {1 Corpus filing} *)

type finding = {
  found : case;
  check_seed : int;
  violation : violation;
  circuits : Spv_circuit.Netlist.t array;  (** shrunk *)
  process : Fuzz.process;  (** shrunk *)
  shrink_steps : int;
}

val finding_to_string : finding -> string
(** Self-contained text form: header lines ([invariant], [gen_seed],
    [max_gates], [check_seed], [process], [shrink_steps], [detail])
    followed by each stage's `.bench` text.  Round-trips through
    {!finding_of_string} to bit-identical circuits (sizes are on the
    fuzzer's 1/4 grid). *)

val finding_of_string : string -> (finding, string) result

val file_finding : dir:string -> finding -> string
(** Write the finding into the fault-corpus directory (created if
    missing) as [fuzz-<invariant>-seed<gen_seed>.repro]; returns the
    path. *)
