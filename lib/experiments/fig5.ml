module V = Spv_core.Variability
module Tech = Spv_process.Tech

let panel_a ?depths () =
  let depths =
    match depths with
    | Some d -> d
    | None -> Array.init 8 (fun i -> 5 * (i + 1))
  in
  let settings =
    [
      ("random-only", Common.random_only_tech);
      ("intra+inter20mV", Common.mixed_tech ~inter_mv:20.0 ());
      ("intra+inter40mV", Common.mixed_tech ~inter_mv:40.0 ());
      ("inter40mV-only", Common.inter_only_tech ~sigma_mv:40.0 ());
    ]
  in
  let x = Array.map float_of_int depths in
  let series =
    List.map
      (fun (label, tech) ->
        let raw = V.stage_sigma_mu_vs_depth tech ~depths in
        (label, V.normalise raw))
      settings
  in
  (x, series)

let panel_b ?stage_counts () =
  let stage_counts =
    match stage_counts with
    | Some c -> c
    | None -> Array.init 10 (fun i -> 4 * (i + 1))
  in
  let stage = Spv_stats.Gaussian.make ~mu:100.0 ~sigma:6.0 in
  let x = Array.map float_of_int stage_counts in
  let series =
    List.map
      (fun rho ->
        (* One memoised Clark prefix recursion over the largest count
           instead of one fold per count; bit-identical to
           V.pipeline_sigma_mu_vs_stages. *)
        let raw = Spv_workload.Sweep.stage_count_sweep ~stage ~rho ~stage_counts in
        (Printf.sprintf "rho=%.1f" rho, V.normalise raw))
      [ 0.0; 0.2; 0.5 ]
  in
  (x, series)

let panel_c ?(total_levels = 120) ?stage_counts () =
  let stage_counts =
    match stage_counts with
    | Some c -> c
    | None ->
        Array.of_list
          (List.filter (fun d -> d >= 2 && d <= 30) (V.divisors total_levels))
  in
  let x = Array.map float_of_int stage_counts in
  let series =
    List.map
      (fun inter_mv ->
        let tech =
          if inter_mv = 0.0 then Common.random_only_tech
          else
            Tech.with_inter_vth Common.random_only_tech ~sigma_mv:inter_mv
        in
        let raw = V.fixed_total_levels tech ~total_levels ~stage_counts in
        (Printf.sprintf "interVth=%.0fmV" inter_mv, raw))
      [ 0.0; 20.0; 40.0 ]
  in
  (x, series)

let print_panel header (x, series) =
  Common.multi_series ~header
    ~labels:(Array.of_list (List.map fst series))
    ~x
    (Array.of_list (List.map snd series))

let run () =
  Common.section "Figure 5: variability (sigma/mu) trends";
  Common.subsection "(a) stage variability vs logic depth (normalised)";
  print_panel "depth vs normalised sigma/mu" (panel_a ());
  Common.subsection "(b) pipeline variability vs number of stages (normalised)";
  print_panel "stages vs normalised sigma/mu" (panel_b ());
  Common.subsection
    "(c) pipeline variability, stages x depth = 120 (raw sigma/mu)";
  print_panel "stages vs sigma/mu" (panel_c ())
