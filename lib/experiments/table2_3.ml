module GO = Spv_sizing.Global_opt
module L = Spv_sizing.Lagrangian

type scenario = Ensure_yield | Minimise_area

type table = {
  scenario : scenario;
  t_target : float;
  yield_target : float;
  baseline : GO.result;
  proposed : GO.result;
  mc_yield_baseline : float;
  mc_yield_proposed : float;
}

let mc_yield result ~t_target =
  (Spv_engine.Engine.yield ~method_:Spv_engine.Engine.Mc ~seed:Common.seed
     ~n:40000
     (Spv_engine.Engine.Ctx.of_pipeline result.GO.pipeline)
     ~t_target)
    .Spv_engine.Engine.value

let compute ?(yield_target = 0.8) scenario =
  let tech = Common.optimisation_tech in
  let ff = Spv_process.Flipflop.default tech in
  let nets = Spv_circuit.Generators.iscas_pipeline () in
  let z =
    Spv_stats.Special.big_phi_inv
      (Spv_core.Yield.per_stage_yield_target ~yield:yield_target
         ~n_stages:(Array.length nets))
  in
  let fast_critical = L.minimum_achievable_delay ~ff tech nets.(0) ~z in
  let t_target =
    match scenario with
    | Ensure_yield -> fast_critical *. 0.985
    | Minimise_area -> fast_critical *. 1.02
  in
  let baseline =
    GO.individually_optimised ~ff tech nets ~t_target ~yield_target
  in
  let proposed =
    match scenario with
    | Ensure_yield -> GO.ensure_yield ~ff tech nets ~t_target ~yield_target
    | Minimise_area -> GO.minimise_area ~ff tech nets ~t_target ~yield_target
  in
  {
    scenario;
    t_target;
    yield_target;
    baseline;
    proposed;
    mc_yield_baseline = mc_yield baseline ~t_target;
    mc_yield_proposed = mc_yield proposed ~t_target;
  }

let print_table t =
  let base_total = t.baseline.GO.total_area in
  Printf.printf
    "  T_target = %.0f ps, pipeline yield target = %.0f%% \
     (per-stage budget %.2f%%)\n"
    t.t_target
    (100.0 *. t.yield_target)
    (100.0
    *. Spv_core.Yield.per_stage_yield_target ~yield:t.yield_target
         ~n_stages:(Array.length t.baseline.GO.nets));
  Common.table_header
    [ "stage"; "indiv area%"; "indiv yield%"; "prop area%"; "prop yield%" ];
  Array.iteri
    (fun i net ->
      Common.table_row
        [
          Spv_circuit.Netlist.name net;
          Printf.sprintf "%.1f" (100.0 *. t.baseline.GO.stage_areas.(i) /. base_total);
          Common.pct t.baseline.GO.stage_yields.(i);
          Printf.sprintf "%.1f" (100.0 *. t.proposed.GO.stage_areas.(i) /. base_total);
          Common.pct t.proposed.GO.stage_yields.(i);
        ])
    t.baseline.GO.nets;
  Common.table_row
    [
      "pipeline";
      "100.0";
      Common.pct t.baseline.GO.pipeline_yield;
      Printf.sprintf "%.1f" (100.0 *. t.proposed.GO.total_area /. base_total);
      Common.pct t.proposed.GO.pipeline_yield;
    ];
  Printf.printf
    "  Monte-Carlo yield check: baseline %.1f%%, proposed %.1f%% \
     (40k joint samples)\n"
    (100.0 *. t.mc_yield_baseline)
    (100.0 *. t.mc_yield_proposed)

let run () =
  Common.section
    "Table II: ensuring the 80%% yield target with small area penalty";
  print_table (compute Ensure_yield);
  Common.section "Table III: area reduction at the 80%% yield target";
  print_table (compute Minimise_area)
