module Ds = Spv_core.Design_space

let default_t_target = 120.0
let default_yield = 0.8

let compute ?(t_target = default_t_target) ?(yield = default_yield)
    ?(stage_counts = [ 4; 12 ]) () =
  Ds.curves ~tech:Common.base_tech ~t_target ~yield ~stage_counts
    ~n_points:40 ()

(* Cross-check: points on the eq. 12 equality curve pin every stage to
   yield P_D^(1/Ns), so the exact independence product over Ns such
   stages must recover the pipeline yield target.  Re-evaluate a few
   sampled points through the batched sweep runner (one shared engine
   context per point). *)
let sweep_cross_check c ~t_target ~yield =
  let module Grid = Spv_workload.Grid in
  let module Sweep = Spv_workload.Sweep in
  let sources =
    List.concat_map
      (fun (n, sigmas) ->
        let idxs =
          (* three feasible points spread across the mu range *)
          List.filter
            (fun i ->
              let s = sigmas.(i) in
              Float.is_finite s && s > 0.0)
            [ 5; 15; 25 ]
        in
        List.map
          (fun i ->
            Grid.Moments
              {
                label = Printf.sprintf "Ns=%d mu=%.2f" n c.Ds.mus.(i);
                stages = Array.make n (c.Ds.mus.(i), sigmas.(i));
                rho = 0.0;
              })
          idxs)
      c.Ds.equality
  in
  let grid =
    {
      Grid.sources;
      processes = [ Grid.nominal ];
      targets = [| t_target |];
      methods = [ Spv_engine.Engine.Exact_independent ];
      n = 1;
      shards = 1;
    }
  in
  let r = Sweep.run grid in
  Printf.printf
    "  sweep cross-check (%d scenarios, %d contexts): equality-curve points \
     vs yield target %.3f\n"
    (Array.length r.Sweep.rows) r.Sweep.n_contexts yield;
  Array.iter
    (fun (row : Sweep.row) ->
      Printf.printf "    %-18s -> independent yield %.6f (loss %.3e)\n"
        row.Sweep.scenario.Sweep.source row.Sweep.estimate.Spv_engine.Engine.value
        row.Sweep.loss)
    r.Sweep.rows

let run () =
  Common.section
    "Figure 4: permissible mean/sigma design space per stage \
     (T_target, yield constraint)";
  let c = compute () in
  Printf.printf
    "  T_target = %.0f ps, yield = %.0f%%; minimum stage mean %.2f ps \
     (sigma floor %.3f ps)\n"
    default_t_target (100.0 *. default_yield) c.Ds.mu_min c.Ds.sigma_min;
  let labels =
    Array.of_list
      ([ "relaxed(11)" ]
      @ List.map (fun (n, _) -> Printf.sprintf "equality(Ns=%d)" n) c.Ds.equality
      @ [ "realiz-min(13)"; "realiz-max(13)" ])
  in
  let columns =
    Array.of_list
      ([ c.Ds.relaxed ]
      @ List.map snd c.Ds.equality
      @ [ c.Ds.realizable_min; c.Ds.realizable_max ])
  in
  Common.multi_series ~header:"mu (ps) vs sigma bounds (ps)" ~labels
    ~x:c.Ds.mus columns;
  sweep_cross_check c ~t_target:default_t_target ~yield:default_yield
