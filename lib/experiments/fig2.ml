module G = Spv_stats.Gaussian

type variant = Random_only | Inter_only | Mixed

let variant_name = function
  | Random_only -> "(a) only random intra-die"
  | Inter_only -> "(b) only inter-die"
  | Mixed -> "(c) inter + intra (random + systematic)"

let tech_of = function
  | Random_only -> Common.random_only_tech
  | Inter_only -> Common.inter_only_tech ()
  | Mixed -> Common.mixed_tech ()

type result = {
  variant : variant;
  samples : float array;
  mc_mean : float;
  mc_std : float;
  model : G.t;
  ks : Spv_stats.Kstest.result;
}

let compute ?(stages = 12) ?(depth = 10) ?(n_samples = 4000) variant =
  let tech = tech_of variant in
  let ff = Spv_process.Flipflop.default tech in
  let nets =
    Spv_circuit.Generators.inverter_chain_pipeline ~stages ~depth ()
  in
  let ctx = Spv_engine.Engine.Ctx.of_circuits ~ff tech nets in
  let samples =
    Spv_engine.Engine.gate_level_delays ~seed:Common.seed ctx ~n:n_samples
  in
  let model = Spv_engine.Engine.Ctx.delay_distribution ctx in
  {
    variant;
    samples;
    mc_mean = Spv_stats.Descriptive.mean samples;
    mc_std = Spv_stats.Descriptive.std samples;
    model;
    ks = Spv_stats.Kstest.against_gaussian samples model;
  }

let run () =
  Common.section
    "Figure 2: delay distribution of a 12-stage (depth-10) inverter-chain \
     pipeline - Monte-Carlo vs analytical";
  List.iter
    (fun variant ->
      let r = compute variant in
      Common.subsection (variant_name variant);
      Printf.printf
        "  MC:    mean = %8.2f ps   std = %6.2f ps   (n = %d)\n\
        \  model: mean = %8.2f ps   std = %6.2f ps\n\
        \  KS distance = %.4f (p = %.3f)\n"
        r.mc_mean r.mc_std (Array.length r.samples) (G.mu r.model)
        (G.sigma r.model) r.ks.Spv_stats.Kstest.statistic
        r.ks.Spv_stats.Kstest.p_value;
      Common.histogram_vs_pdf ~samples:r.samples ~pdf:(G.pdf r.model) ())
    [ Random_only; Inter_only; Mixed ]
