module G = Spv_stats.Gaussian

type config = {
  label : string;
  depths : int array;
  tech : Spv_process.Tech.t;
}

let default_configs () =
  [
    { label = "8 x 5"; depths = Array.make 8 5; tech = Common.random_only_tech };
    { label = "5 x 8"; depths = Array.make 5 8; tech = Common.random_only_tech };
    {
      label = "5 x *";
      depths = [| 6; 7; 8; 9; 10 |];
      tech = Common.random_only_tech;
    };
    {
      label = "5 x 8 inter";
      depths = Array.make 5 8;
      tech = Common.inter_only_tech ();
    };
    {
      label = "5 x 8 inter+intra";
      depths = Array.make 5 8;
      tech = Common.mixed_tech ();
    };
  ]

type row = {
  config : config;
  t_target : float;
  mc_mu : float;
  mc_sigma : float;
  mc_yield : float;
  model_mu : float;
  model_sigma : float;
  model_yield : float;
}

let compute ?(n_samples = 8000) config =
  let tech = config.tech in
  let ff = Spv_process.Flipflop.default tech in
  let nets =
    Spv_circuit.Generators.variable_depth_pipeline ~depths:config.depths ()
  in
  let ctx = Spv_engine.Engine.Ctx.of_circuits ~ff tech nets in
  let model = Spv_engine.Engine.Ctx.delay_distribution ctx in
  (* Delay target near the upper tail, rounded to a readable grid. *)
  let t_target = 5.0 *. Float.round (G.quantile model ~p:0.90 /. 5.0) in
  let samples =
    Spv_engine.Engine.gate_level_delays ~seed:Common.seed ctx ~n:n_samples
  in
  {
    config;
    t_target;
    mc_mu = Spv_stats.Descriptive.mean samples;
    mc_sigma = Spv_stats.Descriptive.std samples;
    mc_yield = Spv_stats.Descriptive.fraction_below samples ~threshold:t_target;
    model_mu = G.mu model;
    model_sigma = G.sigma model;
    model_yield =
      (Spv_engine.Engine.yield ~method_:Spv_engine.Engine.Analytic_clark ctx
         ~t_target)
        .Spv_engine.Engine.value;
  }

let run () =
  Common.section
    "Table I: modelling vs Monte-Carlo for pipeline configurations \
     (stages x logic depth)";
  Common.table_header
    [ "config"; "target(ps)"; "MC mu"; "MC sigma"; "MC yield%"; "mdl mu";
      "mdl sigma"; "mdl yield%" ];
  List.iter
    (fun config ->
      let r = compute config in
      Common.table_row
        [
          r.config.label;
          Printf.sprintf "%.0f" r.t_target;
          Printf.sprintf "%.1f" r.mc_mu;
          Printf.sprintf "%.2f" r.mc_sigma;
          Common.pct r.mc_yield;
          Printf.sprintf "%.1f" r.model_mu;
          Printf.sprintf "%.2f" r.model_sigma;
          Common.pct r.model_yield;
        ])
    (default_configs ())
