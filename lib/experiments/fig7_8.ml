module Balance = Spv_core.Balance

type setup = {
  models : Balance.stage_model array;
  t_target : float;
  z : float;
  tech : Spv_process.Tech.t;
}

let setup ?(bits = 8) () =
  let tech = Common.optimisation_tech in
  let ff = Spv_process.Flipflop.default tech in
  let z =
    Spv_stats.Special.big_phi_inv
      (Spv_core.Yield.per_stage_yield_target ~yield:0.8 ~n_stages:3)
  in
  let nets = Spv_circuit.Generators.alu_decoder_stages ~bits in
  let models =
    Array.map (fun net -> Spv_sizing.Area_delay.stage_model ~ff ~n_points:9 tech net ~z) nets
  in
  (* A feasible common target: every stage must be able to reach it,
     with trading room on both sides. *)
  let slowest_fast =
    Array.fold_left (fun acc m -> Float.max acc (fst (Balance.delay_bounds m))) neg_infinity models
  in
  let fastest_slow =
    Array.fold_left (fun acc m -> Float.min acc (snd (Balance.delay_bounds m))) infinity models
  in
  let t_target = slowest_fast +. (0.45 *. (fastest_slow -. slowest_fast)) in
  { models; t_target; z; tech }

type comparison = {
  balanced : Balance.solution;
  unbalanced_best : Balance.solution;
  unbalanced_worst : Balance.solution;
  ri : float array;
}

(* Common stage delay at which the balanced design achieves exactly the
   target yield at the setup's delay target (yield decreases with the
   common delay, so plain bisection applies). *)
let balanced_delay_for_yield s ~target_yield =
  let n = Array.length s.models in
  let lo =
    Array.fold_left (fun acc m -> Float.max acc (fst (Balance.delay_bounds m))) neg_infinity s.models
  in
  let hi =
    Array.fold_left (fun acc m -> Float.min acc (snd (Balance.delay_bounds m))) infinity s.models
  in
  let yield_at d =
    (Balance.evaluate s.models ~delays:(Array.make n d) ~t_target:s.t_target)
      .Balance.yield
  in
  if yield_at lo < target_yield then
    invalid_arg "Fig7_8: target yield unreachable even at fastest balanced design";
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if yield_at mid >= target_yield then bisect mid hi (iters - 1)
      else bisect lo mid (iters - 1)
  in
  if yield_at hi >= target_yield then hi else bisect lo hi 60

let compare_at s ~target_yield =
  let n = Array.length s.models in
  let d_bal = balanced_delay_for_yield s ~target_yield in
  let delays = Array.make n d_bal in
  let balanced = Balance.evaluate s.models ~delays ~t_target:s.t_target in
  let total_area = balanced.Balance.area in
  let unbalanced_best =
    Balance.optimise_constant_area s.models ~total_area ~t_target:s.t_target
  in
  let unbalanced_worst =
    Balance.pessimise_constant_area s.models ~total_area ~t_target:s.t_target
  in
  let ri = Array.map (fun m -> Balance.ri m ~delay:d_bal) s.models in
  { balanced; unbalanced_best; unbalanced_worst; ri }

let delay_samples s solution ~n =
  let pipeline =
    Balance.pipeline_of s.models ~delays:solution.Balance.delays
  in
  Spv_engine.Engine.sample_delays ~seed:Common.seed
    (Spv_engine.Engine.Ctx.of_pipeline pipeline)
    ~n

let print_solution label (sol : Balance.solution) =
  Printf.printf "  %-18s area = %8.1f  yield = %6.2f%%  delays = [%s]\n" label
    sol.Balance.area
    (100.0 *. sol.Balance.yield)
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.1f") sol.Balance.delays)))

let run () =
  let s = setup () in
  Common.section
    "Figure 8: area vs delay curves of the 3-stage ALU-decoder pipeline";
  Array.iter
    (fun m ->
      Common.subsection (Balance.name m);
      Common.series ~header:"delay(norm) vs area(norm)"
        (Spv_sizing.Area_delay.normalised (Balance.points m)))
    s.models;
  Common.section
    "Figure 7: balanced vs unbalanced pipeline at constant area";
  Printf.printf "  pipeline delay target T = %.1f ps, per-stage z = %.3f\n"
    s.t_target s.z;
  let c80 = compare_at s ~target_yield:0.8 in
  Printf.printf "  eq.14 R_i at balanced point: [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") c80.ri)));
  Common.subsection "(a) delay distributions at constant area (target 80%)";
  let bal_samples = delay_samples s c80.balanced ~n:20000 in
  let unb_samples = delay_samples s c80.unbalanced_best ~n:20000 in
  Printf.printf "  balanced:   %s\n" (Spv_stats.Descriptive.summary bal_samples);
  Printf.printf "  unbalanced: %s\n" (Spv_stats.Descriptive.summary unb_samples);
  Common.subsection "(b) achieved yield with the same area";
  Common.table_header
    [ "target-yield%"; "balanced%"; "unbal-best%"; "unbal-worst%" ];
  List.iter
    (fun ty ->
      let c = compare_at s ~target_yield:ty in
      Common.table_row
        [
          Common.pct ty;
          Common.pct c.balanced.Balance.yield;
          Common.pct c.unbalanced_best.Balance.yield;
          Common.pct c.unbalanced_worst.Balance.yield;
        ])
    [ 0.70; 0.75; 0.80 ];
  List.iter
    (fun (label, sol) -> print_solution label sol)
    [
      ("balanced", c80.balanced);
      ("unbalanced-best", c80.unbalanced_best);
      ("unbalanced-worst", c80.unbalanced_worst);
    ]
