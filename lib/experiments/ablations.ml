module Balance = Spv_core.Balance
module Criticality = Spv_core.Stage_criticality

let criticality_study () =
  let s = Fig7_8.setup () in
  let c = Fig7_8.compare_at s ~target_yield:0.8 in
  let study label (sol : Balance.solution) =
    let pipeline = Balance.pipeline_of s.Fig7_8.models ~delays:sol.Balance.delays in
    let probs = Criticality.probabilities pipeline (Common.rng ()) in
    (label, probs, Criticality.entropy probs)
  in
  [
    study "balanced" c.Fig7_8.balanced;
    study "unbalanced-best" c.Fig7_8.unbalanced_best;
    study "unbalanced-worst" c.Fig7_8.unbalanced_worst;
  ]

let correlation_length_sweep ?lengths () =
  let lengths =
    match lengths with
    | Some l -> l
    | None -> [| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 |]
  in
  let tech = Common.mixed_tech () in
  let ff = Spv_process.Flipflop.default tech in
  let nets = Spv_circuit.Generators.inverter_chain_pipeline ~stages:5 ~depth:8 () in
  (* Fixed target: the 85% quantile at the default length, so the yield
     column shows the effect of correlation alone. *)
  let reference =
    Spv_core.Pipeline.delay_distribution (Spv_core.Pipeline.of_circuits ~ff tech nets)
  in
  let t_target = Spv_stats.Gaussian.quantile reference ~p:0.85 in
  Array.map
    (fun corr_length ->
      let tech = { tech with Spv_process.Tech.corr_length } in
      let p = Spv_core.Pipeline.of_circuits ~ff tech nets in
      let tp = Spv_core.Pipeline.delay_distribution p in
      ( corr_length,
        Spv_stats.Gaussian.sigma tp,
        Spv_core.Yield.clark_gaussian p ~t_target ))
    lengths

let sizer_policy_sweep ?thetas () =
  let thetas =
    match thetas with Some t -> t | None -> [| 0.01; 0.03; 0.05; 0.10; 0.20 |]
  in
  let tech = Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let z = Spv_stats.Special.big_phi_inv 0.9457 in
  let net = Spv_circuit.Generators.c432 () in
  let slow = Spv_sizing.Lagrangian.relaxed_delay ~ff tech net ~z in
  let fast = Spv_sizing.Lagrangian.minimum_achievable_delay ~ff tech net ~z in
  let t_target = fast +. (0.35 *. (slow -. fast)) in
  Array.map
    (fun theta ->
      let options =
        { Spv_sizing.Lagrangian.default_options with
          Spv_sizing.Lagrangian.theta_fraction = theta }
      in
      let r = Spv_sizing.Lagrangian.size_stage ~options ~ff tech net ~t_target ~z in
      ( theta,
        r.Spv_sizing.Lagrangian.area,
        r.Spv_sizing.Lagrangian.iterations,
        r.Spv_sizing.Lagrangian.converged ))
    thetas

let ssta_method_study () =
  let tech = Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  List.map
    (fun net ->
      let path, block =
        Spv_circuit.Block_ssta.compare_with_path_based ~ff tech net
      in
      let mc =
        Spv_engine.Engine.gate_level_delays ~seed:Common.seed
          (Spv_engine.Engine.Ctx.of_circuits ~ff tech [| net |])
          ~n:4000
      in
      ( Spv_circuit.Netlist.name net,
        path,
        block,
        Spv_stats.Descriptive.mean mc,
        Spv_stats.Descriptive.std mc ))
    [
      Spv_circuit.Generators.inverter_chain ~depth:10 ();
      Spv_circuit.Generators.alu_slice ~bits:8 ();
      Spv_circuit.Generators.c432 ();
    ]

let leakage_tax_sweep ?sigmas_mv () =
  let sigmas_mv =
    match sigmas_mv with Some s -> s | None -> [| 0.0; 20.0; 40.0; 60.0; 80.0 |]
  in
  let net = Spv_circuit.Generators.c432 () in
  Array.map
    (fun sigma_mv ->
      let tech =
        Spv_process.Tech.with_random_vth
          (Spv_process.Tech.no_variation Common.base_tech)
          ~sigma_mv
      in
      let p = Spv_circuit.Power.analyse tech net in
      let mc =
        Spv_circuit.Power.leakage_mc tech net (Common.rng ()) ~n:2000
      in
      ( sigma_mv,
        p.Spv_circuit.Power.leakage_mean /. p.Spv_circuit.Power.leakage_nominal,
        Spv_stats.Descriptive.mean mc /. p.Spv_circuit.Power.leakage_nominal ))
    sigmas_mv

let dual_vth_study () =
  let tech = Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let z = Spv_stats.Special.big_phi_inv 0.95 in
  let net = Spv_circuit.Generators.c432 () in
  let a0 =
    Spv_sizing.Multi_vth.all_low net ~delay_penalty:1.15 ~vth_offset:0.08
  in
  let d0 = Spv_sizing.Multi_vth.stat_delay ~ff tech net a0 ~z in
  List.map
    (fun slack ->
      let r =
        Spv_sizing.Multi_vth.optimise ~ff tech net ~t_target:(slack *. d0) ~z
      in
      ( slack,
        r.Spv_sizing.Multi_vth.swapped,
        1.0
        -. (r.Spv_sizing.Multi_vth.leakage_after
           /. r.Spv_sizing.Multi_vth.leakage_before) ))
    [ 1.00; 1.05; 1.15 ]

let node_scaling_study () =
  let nets = Spv_circuit.Generators.inverter_chain_pipeline ~stages:5 ~depth:8 () in
  List.map
    (fun tech ->
      let ff = Spv_process.Flipflop.default tech in
      let p = Spv_core.Pipeline.of_circuits ~ff tech nets in
      let stage = Spv_core.Pipeline.stage p 0 in
      let tp = Spv_core.Pipeline.delay_distribution p in
      let nominal = Spv_core.Pipeline.nominal_delay p in
      let t_target = 1.05 *. nominal in
      ( tech.Spv_process.Tech.name,
        100.0 *. Spv_core.Stage.variability stage,
        100.0 *. Spv_stats.Gaussian.sigma tp /. Spv_stats.Gaussian.mu tp,
        100.0 *. Spv_core.Yield.clark_gaussian p ~t_target ))
    Spv_process.Tech.scaling_nodes

let run () =
  Common.section "Ablations & extensions";
  Common.subsection
    "criticality concentration (supports the paper's §3.2 argument)";
  List.iter
    (fun (label, probs, entropy) ->
      Printf.printf "  %-18s P(critical) = [%s]   entropy = %.3f nats\n" label
        (String.concat "; "
           (Array.to_list (Array.map (Printf.sprintf "%.3f") probs)))
        entropy)
    (criticality_study ());
  Common.subsection "variance budget of the 5x8 mixed-variation pipeline";
  (let tech = Common.mixed_tech () in
   let ff = Spv_process.Flipflop.default tech in
   let nets = Spv_circuit.Generators.inverter_chain_pipeline ~stages:5 ~depth:8 () in
   let p = Spv_core.Pipeline.of_circuits ~ff tech nets in
   Format.printf "  %a@." Spv_core.Variance_budget.pp
     (Spv_core.Variance_budget.of_pipeline p));
  Common.subsection "spatial correlation length vs pipeline sigma / yield";
  Common.table_header [ "corr-length"; "sigma_T (ps)"; "yield %" ];
  Array.iter
    (fun (l, sigma, y) ->
      Common.table_row
        [ Printf.sprintf "%.2f" l; Printf.sprintf "%.2f" sigma; Common.pct y ])
    (correlation_length_sweep ());
  Common.subsection "sizer criticality-temperature policy";
  Common.table_header [ "theta"; "area"; "iterations"; "converged" ];
  Array.iter
    (fun (theta, area, iters, conv) ->
      Common.table_row
        [
          Printf.sprintf "%.2f" theta; Printf.sprintf "%.1f" area;
          string_of_int iters; string_of_bool conv;
        ])
    (sizer_policy_sweep ());
  Common.subsection "SSTA method: critical-path vs block-based vs MC";
  Common.table_header [ "circuit"; "path mu/sigma"; "block mu/sigma"; "MC mu/sigma" ];
  List.iter
    (fun (name, path, block, mc_mu, mc_std) ->
      let fmt g =
        Printf.sprintf "%.1f/%.2f" (Spv_stats.Gaussian.mu g)
          (Spv_stats.Gaussian.sigma g)
      in
      Common.table_row
        [ name; fmt path; fmt block; Printf.sprintf "%.1f/%.2f" mc_mu mc_std ])
    (ssta_method_study ());
  Common.subsection "dual-Vth assignment on c432 (criticality-guided)";
  Common.table_header [ "timing slack"; "high-Vth gates"; "leakage saved %" ];
  List.iter
    (fun (slack, swapped, saved) ->
      Common.table_row
        [ Printf.sprintf "%.2fx" slack;
          Printf.sprintf "%d/160" swapped;
          Printf.sprintf "%.0f" (100.0 *. saved) ])
    (dual_vth_study ());
  Common.subsection
    "technology scaling: same pipeline, 5% guardband clock";
  Common.table_header
    [ "node"; "stage s/m %"; "pipe s/m %"; "yield@1.05x %" ];
  List.iter
    (fun (name, sv, pv, y) ->
      Common.table_row
        [ name; Printf.sprintf "%.2f" sv; Printf.sprintf "%.2f" pv;
          Printf.sprintf "%.1f" y ])
    (node_scaling_study ());
  Common.subsection "leakage variation tax (mean / nominal)";
  Common.table_header [ "sigmaVth (mV)"; "analytic"; "Monte-Carlo" ];
  Array.iter
    (fun (s, a, m) ->
      Common.table_row
        [ Printf.sprintf "%.0f" s; Printf.sprintf "%.3f" a; Printf.sprintf "%.3f" m ])
    (leakage_tax_sweep ())
