open Helpers
module Cr = Spv_core.Stage_criticality
module Stage = Spv_core.Stage
module P = Spv_core.Pipeline
module C = Spv_stats.Correlation

let balanced_pipeline n =
  P.make
    (Array.init n (fun i ->
         Stage.of_moments ~name:(string_of_int i) ~mu:100.0 ~sigma:5.0 ()))
    ~corr:(C.independent ~n)

let dominated_pipeline () =
  let stages =
    [|
      Stage.of_moments ~mu:100.0 ~sigma:3.0 ();
      Stage.of_moments ~mu:140.0 ~sigma:3.0 ();
      Stage.of_moments ~mu:95.0 ~sigma:3.0 ();
    |]
  in
  P.make stages ~corr:(C.independent ~n:3)

let test_probabilities_sum_to_one () =
  let p = balanced_pipeline 4 in
  let probs = Cr.probabilities ~n:10000 p (Spv_stats.Rng.create ~seed:150) in
  check_close ~rel:1e-9 "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 probs)

let test_balanced_is_uniform () =
  let p = balanced_pipeline 4 in
  let probs = Cr.probabilities ~n:40000 p (Spv_stats.Rng.create ~seed:151) in
  Array.iter (fun pr -> check_in_range "near 1/4" ~lo:0.23 ~hi:0.27 pr) probs

let test_dominated_concentrates () =
  let p = dominated_pipeline () in
  let probs = Cr.probabilities ~n:10000 p (Spv_stats.Rng.create ~seed:152) in
  check_in_range "slow stage almost surely critical" ~lo:0.99 ~hi:1.0 probs.(1);
  Alcotest.(check int) "most critical" 1 (Cr.most_critical probs)

let test_analytic_matches_mc () =
  let stages =
    [|
      Stage.of_moments ~mu:100.0 ~sigma:5.0 ();
      Stage.of_moments ~mu:103.0 ~sigma:4.0 ();
      Stage.of_moments ~mu:98.0 ~sigma:7.0 ();
    |]
  in
  let p = P.make stages ~corr:(C.independent ~n:3) in
  let analytic = Cr.probabilities_analytic_independent p in
  check_close ~rel:1e-6 "analytic sums to 1" 1.0
    (Array.fold_left ( +. ) 0.0 analytic);
  let mc = Cr.probabilities ~n:200000 p (Spv_stats.Rng.create ~seed:153) in
  Array.iteri
    (fun i a ->
      check_in_range
        (Printf.sprintf "stage %d" i)
        ~lo:(mc.(i) -. 0.01) ~hi:(mc.(i) +. 0.01) a)
    analytic

let test_entropy () =
  check_close ~rel:1e-12 "uniform entropy" (log 4.0)
    (Cr.entropy [| 0.25; 0.25; 0.25; 0.25 |]);
  check_float "degenerate entropy" 0.0 (Cr.entropy [| 1.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "uniform maximal" true
    (Cr.entropy [| 0.25; 0.25; 0.25; 0.25 |] > Cr.entropy [| 0.7; 0.1; 0.1; 0.1 |]);
  check_raises_invalid "negative" (fun () -> ignore (Cr.entropy [| -0.1; 1.1 |]))

let test_yield_gradient_sign_and_ranking () =
  let p = dominated_pipeline () in
  let grad = Cr.yield_gradient_mu p ~t_target:145.0 in
  Array.iter
    (fun g -> Alcotest.(check bool) "gradients negative" true (g <= 0.0))
    grad;
  (* The slow stage dominates the gradient: speeding it buys the most. *)
  Alcotest.(check bool) "slowest has steepest gradient" true
    (abs_float grad.(1) > abs_float grad.(0)
    && abs_float grad.(1) > abs_float grad.(2))

let test_gradient_matches_finite_difference () =
  let mus = [| 100.0; 104.0; 97.0 |] in
  let build mus =
    P.make
      (Array.map (fun mu -> Stage.of_moments ~mu ~sigma:5.0 ()) mus)
      ~corr:(C.independent ~n:3)
  in
  let t_target = 108.0 in
  let grad = Cr.yield_gradient_mu (build mus) ~t_target in
  let h = 1e-4 in
  Array.iteri
    (fun i g ->
      let bumped = Array.copy mus in
      bumped.(i) <- bumped.(i) +. h;
      let fd =
        (Spv_core.Yield.independent_exact (build bumped) ~t_target
        -. Spv_core.Yield.independent_exact (build mus) ~t_target)
        /. h
      in
      check_close ~rel:1e-3 (Printf.sprintf "stage %d finite diff" i) fd g)
    grad

let suite =
  [
    quick "probabilities sum to 1" test_probabilities_sum_to_one;
    slow "balanced is uniform" test_balanced_is_uniform;
    quick "dominated concentrates" test_dominated_concentrates;
    slow "analytic matches MC" test_analytic_matches_mc;
    quick "entropy" test_entropy;
    quick "gradient sign and ranking" test_yield_gradient_sign_and_ranking;
    quick "gradient matches finite difference" test_gradient_matches_finite_difference;
  ]
