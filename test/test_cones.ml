open Helpers
module A = Spv_analysis.Affine
module As = Spv_analysis.Affine_sta
module Cn = Spv_analysis.Cones
module Cr = Spv_analysis.Static_criticality
module I = Spv_analysis.Interval
module Engine = Spv_engine.Engine
module Gen = Spv_circuit.Generators
module Fuzz = Spv_circuit.Fuzz
module Netlist = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Mvn = Spv_stats.Mvn
module Rng = Spv_stats.Rng
module Imp = Spv_stats.Importance
module Special = Spv_stats.Special

let tech = Spv_process.Tech.bptm70

let moment_ctx () =
  let stages =
    Array.map2
      (fun mu sigma -> Spv_core.Stage.of_moments ~mu ~sigma ())
      [| 100.0; 95.0; 90.0; 105.0 |] [| 5.0; 4.0; 3.0; 6.0 |]
  in
  Engine.Ctx.of_pipeline
    (Spv_core.Pipeline.make stages
       ~corr:(Spv_stats.Correlation.uniform ~n:4 ~rho:0.3))

(* Binomial allowance around a bound value at sample size [n]. *)
let binom_allow ~n p =
  let p = Float.max 1e-12 (Float.min (1.0 -. 1e-12) p) in
  (4.0 *. sqrt (p *. (1.0 -. p) /. float_of_int n)) +. 1e-9

(* ---- stage criticality: exactness and MC containment ------------------ *)

(* Two independent stages: the criticality event is a single pairwise
   comparison, so both bounds collapse to the same exact Gaussian
   probability. *)
let test_stage_crit_two_stage_exact () =
  let stages =
    [|
      Spv_core.Stage.of_moments ~mu:100.0 ~sigma:4.0 ();
      Spv_core.Stage.of_moments ~mu:90.0 ~sigma:3.0 ();
    |]
  in
  let ctx =
    Engine.Ctx.of_pipeline
      (Spv_core.Pipeline.make stages
         ~corr:(Spv_stats.Correlation.independent ~n:2))
  in
  let co = Cn.analyse ctx in
  let p = Special.big_phi (10.0 /. 5.0) in
  check_float ~eps:1e-12 "stage 0 lower exact" p
    (I.lo co.Cn.co_stages.(0).Cn.sc_crit);
  check_float ~eps:1e-12 "stage 0 upper exact" p
    (I.hi co.Cn.co_stages.(0).Cn.sc_crit);
  check_float ~eps:1e-12 "stage 1 lower exact" (1.0 -. p)
    (I.lo co.Cn.co_stages.(1).Cn.sc_crit);
  check_float ~eps:1e-12 "stage 1 upper exact" (1.0 -. p)
    (I.hi co.Cn.co_stages.(1).Cn.sc_crit)

(* Correlated four-stage pipeline: empirical argmax frequencies over
   the context's own MVN must sit inside every stage's enclosure. *)
let test_stage_crit_mc_containment () =
  let ctx = moment_ctx () in
  let co = Cn.analyse ~t_target:118.0 ctx in
  let mvn = Engine.Ctx.mvn ctx in
  let n_stages = Engine.Ctx.n_stages ctx in
  let n = 10_000 in
  let rng = Rng.create ~seed:20260809 in
  let wins = Array.make n_stages 0 in
  for _ = 1 to n do
    let x = Mvn.sample mvn rng in
    let best = ref 0 in
    for s = 1 to n_stages - 1 do
      if x.(s) > x.(!best) then best := s
    done;
    wins.(!best) <- wins.(!best) + 1
  done;
  let sum_hi = ref 0.0 in
  Array.iteri
    (fun s (sc : Cn.stage_crit) ->
      let freq = float_of_int wins.(s) /. float_of_int n in
      let lo = I.lo sc.Cn.sc_crit and hi = I.hi sc.Cn.sc_crit in
      check_in_range "bounds are probabilities" ~lo:0.0 ~hi:1.0 lo;
      check_in_range "ordered" ~lo ~hi hi;
      sum_hi := !sum_hi +. hi;
      if freq < lo -. binom_allow ~n lo then
        Alcotest.failf "stage %d: freq %.4f below lower bound %.4f" s freq lo;
      if freq > hi +. binom_allow ~n hi then
        Alcotest.failf "stage %d: freq %.4f above upper bound %.4f" s freq hi;
      match sc.Cn.sc_depth with
      | None -> Alcotest.fail "depth expected with a target"
      | Some d -> check_in_range "finite depth" ~lo:(-10.0) ~hi:20.0 d)
    co.Cn.co_stages;
  (* The criticality events cover the whole space (ties have measure
     zero), so the upper bounds must sum to at least 1. *)
  check_in_range "uppers cover" ~lo:1.0 ~hi:(float_of_int n_stages) !sum_hi

(* ---- gate criticality: MC soundness on fuzzed netlists ---------------- *)

(* Re-derive the per-gate affine delay forms the pass analyses (the
   linearised-factor model, remainder exactly zero), then Monte-Carlo
   the gate criticality event itself: sample every noise symbol,
   evaluate each gate's delay, run the scalar forward/backward DP and
   mark the gates whose through-value attains the stage max.  Every
   empirical frequency must land inside the static enclosure — the
   acceptance criterion is zero escapes. *)
let stage_gate_forms ctx ~sys_row ~stage =
  let tech = Engine.Ctx.tech ctx in
  let net = Engine.Ctx.netlist ctx stage in
  let nominal = Engine.Ctx.nominal_sta ctx stage in
  Array.init (Netlist.n_nodes net) (fun i ->
      match Netlist.node net i with
      | Netlist.Primary_input _ -> None
      | Netlist.Gate _ ->
          let factor =
            As.stage_factor_form ~k:6.0 tech ~sys_row ~stage ~node:i
              ~size:(Netlist.size net i)
          in
          Some (A.scale factor nominal.Sta.gate_delays.(i)))

let mc_gate_criticality ctx ~stage ~forms ~n ~rng =
  let net = Engine.Ctx.netlist ctx stage in
  let n_nodes = Netlist.n_nodes net in
  let n_stages = Engine.Ctx.n_stages ctx in
  let outputs = Netlist.outputs net in
  let is_output = Array.make n_nodes false in
  Array.iter (fun o -> is_output.(o) <- true) outputs;
  let hits = Array.make n_nodes 0 in
  let delay = Array.make n_nodes 0.0 in
  let arr = Array.make n_nodes 0.0 in
  let down = Array.make n_nodes neg_infinity in
  for _ = 1 to n do
    (* One world: every symbol class drawn fresh; Rand symbols drawn
       lazily per device in deterministic node order. *)
    let vth = Rng.gaussian rng and leff = Rng.gaussian rng in
    let sys = Array.init n_stages (fun _ -> Rng.gaussian rng) in
    let rand = Hashtbl.create 64 in
    let at = function
      | A.Vth_inter -> vth
      | A.Leff_inter -> leff
      | A.Sys j -> sys.(j)
      | A.Rand { stage; node } -> (
          match Hashtbl.find_opt rand (stage, node) with
          | Some v -> v
          | None ->
              let v = Rng.gaussian rng in
              Hashtbl.add rand (stage, node) v;
              v)
      | A.Factor _ -> 0.0
    in
    for i = 0 to n_nodes - 1 do
      (match forms.(i) with
      | None -> delay.(i) <- 0.0
      | Some f -> delay.(i) <- I.lo (A.eval_interval f at));
      arr.(i) <- 0.0;
      down.(i) <- neg_infinity
    done;
    for i = 0 to n_nodes - 1 do
      match Netlist.node net i with
      | Netlist.Primary_input _ -> ()
      | Netlist.Gate { fanin; _ } ->
          let latest =
            Array.fold_left (fun acc f -> Float.max acc arr.(f)) 0.0 fanin
          in
          arr.(i) <- latest +. delay.(i)
    done;
    let d =
      Array.fold_left (fun acc o -> Float.max acc arr.(o)) neg_infinity outputs
    in
    for i = n_nodes - 1 downto 0 do
      if is_output.(i) then down.(i) <- 0.0;
      List.iter
        (fun g ->
          if Netlist.is_gate net g && down.(g) > neg_infinity then
            down.(i) <- Float.max down.(i) (delay.(g) +. down.(g)))
        (Netlist.fanouts net i)
    done;
    let eps = 1e-7 *. Float.max 1.0 (Float.abs d) in
    for i = 0 to n_nodes - 1 do
      if
        Netlist.is_gate net i
        && down.(i) > neg_infinity
        && arr.(i) +. down.(i) >= d -. eps
      then hits.(i) <- hits.(i) + 1
    done
  done;
  hits

let test_gate_crit_mc_zero_escapes () =
  let n = 10_000 in
  List.iter
    (fun seed ->
      let config =
        {
          Fuzz.default_config with
          Fuzz.max_stages = 2;
          Fuzz.max_gates = 24;
          Fuzz.max_depth = 6;
          Fuzz.max_inputs = 4;
        }
      in
      let nets = Fuzz.generate ~config (Rng.create ~seed) in
      let ctx = Engine.Ctx.of_circuits tech nets in
      let co = Cn.analyse ctx in
      let rows = As.spatial_rows ctx in
      let escapes = ref 0 in
      for stage = 0 to Engine.Ctx.n_stages ctx - 1 do
        let forms = stage_gate_forms ctx ~sys_row:rows.(stage) ~stage in
        let rng = Rng.create ~seed:(7919 * (seed + stage)) in
        let hits = mc_gate_criticality ctx ~stage ~forms ~n ~rng in
        match Cn.gate_bounds co ~stage with
        | None -> Alcotest.fail "gate bounds expected on a gate-level context"
        | Some bounds ->
            Array.iteri
              (fun i b ->
                let freq = float_of_int hits.(i) /. float_of_int n in
                let lo = I.lo b and hi = I.hi b in
                check_in_range "gate bound ordered" ~lo ~hi hi;
                if
                  freq < lo -. binom_allow ~n lo
                  || freq > hi +. binom_allow ~n hi
                then begin
                  incr escapes;
                  Printf.printf
                    "seed %d stage %d node %d: freq %.4f outside [%.4f, %.4f]\n"
                    seed stage i freq lo hi
                end)
              bounds
      done;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: zero escapes" seed)
        0 !escapes)
    [ 11; 23 ]

(* ---- cones: structure and ranking ------------------------------------- *)

let test_cone_structure () =
  let ctx =
    Engine.Ctx.of_circuits tech
      [| Gen.ripple_carry_adder ~bits:4; Gen.inverter_chain ~depth:6 () |]
  in
  let co = Cn.analyse ~t_target:200.0 ctx in
  Alcotest.(check bool) "adder yields reconvergent cones" true
    (co.Cn.co_cones <> []);
  let prev = ref infinity in
  List.iter
    (fun (c : Cn.cone) ->
      let norm =
        sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 c.Cn.cn_shift)
      in
      check_float ~eps:1e-9 "whitened shift has unit norm" 1.0 norm;
      Alcotest.(check bool) "member gates present" true
        (Array.length c.Cn.cn_gates > 0);
      Array.iteri
        (fun j g ->
          if j > 0 && g <= c.Cn.cn_gates.(j - 1) then
            Alcotest.fail "member gates must be strictly ascending")
        c.Cn.cn_gates;
      check_in_range "cone crit lower" ~lo:0.0 ~hi:1.0 (I.lo c.Cn.cn_crit);
      check_in_range "cone crit upper" ~lo:(I.lo c.Cn.cn_crit) ~hi:1.0
        (I.hi c.Cn.cn_crit);
      (* Frechet combination can never exceed the member bound. *)
      check_in_range "crit below gate crit" ~lo:0.0
        ~hi:(I.hi c.Cn.cn_gate_crit +. 1e-12)
        (I.hi c.Cn.cn_crit);
      (* Ranked most-critical first. *)
      check_in_range "ranking monotone" ~lo:0.0 ~hi:!prev (I.lo c.Cn.cn_crit);
      prev := I.lo c.Cn.cn_crit)
    co.Cn.co_cones;
  List.iter
    (fun (c : Cn.cone) ->
      check_in_range "dominant cones clear the threshold"
        ~lo:co.Cn.co_threshold ~hi:1.0 (I.lo c.Cn.cn_crit))
    (Cn.dominant_cones co)

(* ---- statistical slack ------------------------------------------------- *)

let test_slack_form_and_attribution () =
  let ctx = moment_ctx () in
  let a = Cn.analyse ~t_target:110.0 ctx in
  let b = Cn.analyse ~t_target:120.0 ctx in
  (match (a.Cn.co_slack, b.Cn.co_slack) with
  | Some sa, Some sb ->
      check_float ~eps:1e-9 "slack center shifts with the target" 10.0
        (A.center sb -. A.center sa);
      check_float ~eps:1e-12 "slack sigma is target-independent"
        (A.sigma sa) (A.sigma sb)
  | _ -> Alcotest.fail "slack form expected with a target");
  let attrib = Cn.slack_attribution a in
  Alcotest.(check bool) "attribution non-empty" true (attrib <> []);
  List.iter
    (fun (cls, s) ->
      Alcotest.(check bool) "class named" true (String.length cls > 0);
      check_in_range "sigma contribution" ~lo:0.0 ~hi:infinity s)
    attrib;
  Alcotest.(check bool) "factor class present" true
    (List.mem_assoc "factor" attrib);
  let none = Cn.analyse ctx in
  Alcotest.(check bool) "no slack without a target" true
    (none.Cn.co_slack = None && Cn.slack_attribution none = [])

(* ---- analyzer-guided proposal: selection contract ---------------------- *)

let test_proposal_tail_uses_cone () =
  let ctx = moment_ctx () in
  Cn.install_engine_proposal ();
  Alcotest.(check bool) "provider installed" true
    (Engine.proposal_provider_installed ());
  let t_target = 129.0 in
  let cone =
    Engine.yield_loss ~method_:Engine.Importance ~proposal:Engine.Cone_guided
      ~n:20_000 ctx ~t_target
  in
  (match cone.Engine.proposal with
  | Some (Engine.Prop_cone modes) ->
      Alcotest.(check int) "one mode per crossing stage" 4 modes
  | other ->
      Alcotest.failf "expected cone proposal, got %s"
        (match other with
        | Some u -> Engine.proposal_used_name u
        | None -> "none"));
  (match cone.Engine.ess with
  | Some ess -> check_in_range "ess positive" ~lo:1.0 ~hi:20_000.0 ess
  | None -> Alcotest.fail "importance estimate must report ess");
  let legacy =
    Engine.yield_loss ~method_:Engine.Importance ~proposal:Engine.Legacy
      ~n:20_000 ctx ~t_target
  in
  Alcotest.(check bool) "legacy tagged" true
    (legacy.Engine.proposal = Some Engine.Prop_legacy);
  let allow =
    5.0 *. (cone.Engine.std_error +. legacy.Engine.std_error) +. 1e-15
  in
  check_in_range "cone and legacy agree"
    ~lo:(legacy.Engine.value -. allow)
    ~hi:(legacy.Engine.value +. allow)
    cone.Engine.value

let test_proposal_body_falls_back_to_plain () =
  let ctx = moment_ctx () in
  Cn.install_engine_proposal ();
  let est =
    Engine.yield_loss ~method_:Engine.Importance ~proposal:Engine.Cone_guided
      ~n:4_000 ctx ~t_target:80.0
  in
  Alcotest.(check bool) "body target reports plain fallback" true
    (est.Engine.proposal = Some Engine.Prop_plain);
  check_in_range "loss near 1 below every mean" ~lo:0.99 ~hi:1.0
    est.Engine.value;
  match est.Engine.ess with
  | Some ess -> check_in_range "plain ess = failing count" ~lo:1.0 ~hi:4_000.0 ess
  | None -> Alcotest.fail "plain fallback must still report ess"

(* Eight exchangeable stages: every stage's criticality lower bound is
   0 (the union bound over seven ties is vacuous), so the provider
   returns None and the engine must keep — and report — its legacy
   mixture. *)
let test_proposal_no_dominant_stage_keeps_legacy () =
  let stages =
    Array.init 8 (fun _ -> Spv_core.Stage.of_moments ~mu:100.0 ~sigma:5.0 ())
  in
  let ctx =
    Engine.Ctx.of_pipeline
      (Spv_core.Pipeline.make stages
         ~corr:(Spv_stats.Correlation.independent ~n:8))
  in
  Cn.install_engine_proposal ();
  Alcotest.(check bool) "no stage dominates" true
    (Cn.proposal ctx ~t_target:120.0 = None);
  let est =
    Engine.yield_loss ~method_:Engine.Importance ~proposal:Engine.Cone_guided
      ~n:4_000 ctx ~t_target:120.0
  in
  Alcotest.(check bool) "falls back to the legacy mixture" true
    (est.Engine.proposal = Some Engine.Prop_legacy)

(* ---- determinism: jobs never change results --------------------------- *)

let test_cone_guided_jobs_determinism () =
  let nets =
    [|
      Gen.random_logic ~name:"j0" ~inputs:4 ~gates:30 ~depth:6 ~seed:5;
      Gen.random_logic ~name:"j1" ~inputs:3 ~gates:20 ~depth:5 ~seed:6;
    |]
  in
  let ctx = Cr.prune_ctx (Engine.Ctx.of_circuits tech nets) in
  let before = Engine.gate_level_delays ~exact:false ctx ~n:1_500 in
  Cn.install_engine_proposal ();
  let t_target =
    Spv_stats.Gaussian.(
      let d = Engine.Ctx.delay_distribution ctx in
      mu d +. (4.0 *. sigma d))
  in
  let run jobs =
    Engine.yield_loss ~method_:Engine.Importance ~proposal:Engine.Cone_guided
      ~jobs ~n:8_000 ctx ~t_target
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "value bit-identical across jobs" true
    (Float.equal a.Engine.value b.Engine.value);
  Alcotest.(check bool) "std_error bit-identical across jobs" true
    (Float.equal a.Engine.std_error b.Engine.std_error);
  Alcotest.(check bool) "ess bit-identical across jobs" true
    (a.Engine.ess = b.Engine.ess && a.Engine.proposal = b.Engine.proposal);
  (* Running the analyzer and a cone-guided estimate must not perturb
     the pruned gate-level sampler: same seed, same bytes, any jobs. *)
  ignore (Cn.analyse ~t_target ctx);
  let after1 = Engine.gate_level_delays ~exact:false ~jobs:1 ctx ~n:1_500 in
  let after3 = Engine.gate_level_delays ~exact:false ~jobs:3 ctx ~n:1_500 in
  Alcotest.(check bool) "pruned-MC stream unchanged after cone runs" true
    (before = after1);
  Alcotest.(check bool) "pruned-MC stream independent of jobs" true
    (after1 = after3)

(* ---- validation -------------------------------------------------------- *)

let test_validation () =
  let ctx = moment_ctx () in
  check_raises_invalid "k zero" (fun () -> ignore (Cn.analyse ~k:0.0 ctx));
  check_raises_invalid "k nan" (fun () -> ignore (Cn.analyse ~k:Float.nan ctx));
  check_raises_invalid "threshold negative" (fun () ->
      ignore (Cn.analyse ~threshold:(-0.1) ctx));
  check_raises_invalid "threshold above one" (fun () ->
      ignore (Cn.analyse ~threshold:1.5 ctx));
  check_raises_invalid "non-finite target" (fun () ->
      ignore (Cn.analyse ~t_target:Float.nan ctx));
  check_raises_invalid "proposal non-finite target" (fun () ->
      ignore (Cn.proposal ctx ~t_target:Float.infinity));
  let mvn =
    Mvn.create ~mus:[| 0.0; 0.0 |] ~sigmas:[| 1.0; 1.0 |]
      ~corr:(Spv_stats.Correlation.independent ~n:2)
  in
  let shifts = [| [| 3.0; 0.0 |]; [| 0.0; 3.0 |] |] in
  check_raises_invalid "alphas without shifts" (fun () ->
      ignore (Imp.plan ~z_alphas:[| 1.0 |] mvn ~threshold:3.0));
  check_raises_invalid "alpha length mismatch" (fun () ->
      ignore (Imp.plan ~z_shifts:shifts ~z_alphas:[| 1.0 |] mvn ~threshold:3.0));
  check_raises_invalid "non-positive alpha" (fun () ->
      ignore
        (Imp.plan ~z_shifts:shifts ~z_alphas:[| 1.0; 0.0 |] mvn ~threshold:3.0));
  check_raises_invalid "non-finite alpha" (fun () ->
      ignore
        (Imp.plan ~z_shifts:shifts ~z_alphas:[| 1.0; Float.nan |] mvn
           ~threshold:3.0));
  check_raises_invalid "empty shift set" (fun () ->
      ignore (Imp.plan ~z_shifts:[||] mvn ~threshold:3.0));
  check_raises_invalid "shift dimension mismatch" (fun () ->
      ignore (Imp.plan ~z_shifts:[| [| 1.0 |] |] mvn ~threshold:3.0))

let suite =
  [
    quick "two-stage criticality is exact" test_stage_crit_two_stage_exact;
    slow "stage criticality MC containment" test_stage_crit_mc_containment;
    slow "gate criticality MC: zero escapes" test_gate_crit_mc_zero_escapes;
    quick "cone structure and ranking" test_cone_structure;
    quick "slack form and attribution" test_slack_form_and_attribution;
    slow "tail target uses the cone proposal" test_proposal_tail_uses_cone;
    quick "body target falls back to plain" test_proposal_body_falls_back_to_plain;
    quick "no dominant stage keeps legacy" test_proposal_no_dominant_stage_keeps_legacy;
    slow "cone-guided runs are jobs-deterministic" test_cone_guided_jobs_determinism;
    quick "validation" test_validation;
  ]
