open Helpers
module Rng = Spv_stats.Rng
module D = Spv_stats.Descriptive

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d equal" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_float_range () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let u = Rng.float rng in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "float outside [0,1): %g" u
  done

let test_float_moments () =
  let rng = Rng.create ~seed:2 in
  let xs = Array.init 100_000 (fun _ -> Rng.float rng) in
  check_in_range "mean" ~lo:0.495 ~hi:0.505 (D.mean xs);
  check_in_range "variance" ~lo:0.081 ~hi:0.086 (D.variance xs)

let test_uniform () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng ~lo:(-5.0) ~hi:3.0 in
    check_in_range "uniform in range" ~lo:(-5.0) ~hi:3.0 u
  done

let test_int_bounds () =
  let rng = Rng.create ~seed:4 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Rng.int rng ~bound:7 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c -> check_in_range (Printf.sprintf "bucket %d" i) ~lo:9500. ~hi:10500. (float_of_int c))
    counts

let test_int_chi_square () =
  (* Pearson chi-square over a non-power-of-two range: the rejection
     mask makes every residue exactly equally likely, so the statistic
     must sit in the bulk of chi2(df = 11).  Threshold 35 is the
     ~2e-4 tail — a masked-without-rejection draw over bound 12 biases
     buckets 0..3 by 33% and blows far past it. *)
  let rng = Rng.create ~seed:31 in
  let bound = 12 in
  let draws = 120_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let v = Rng.int rng ~bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  check_in_range "chi-square df=11" ~lo:0.0 ~hi:35.0 chi2

let test_int_bound_one () =
  let rng = Rng.create ~seed:37 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 draws 0" 0 (Rng.int rng ~bound:1)
  done

let test_int_huge_bound () =
  (* Regression: the pre-fix mask loop (mask := mask lsl 1 until >=
     bound) never terminated for bounds above 2^61 because the shift
     wraps through min_int to 0.  The bottom-up all-ones mask stops at
     max_int. *)
  let rng = Rng.create ~seed:41 in
  for _ = 1 to 100 do
    let v = Rng.int rng ~bound:max_int in
    Alcotest.(check bool) "huge bound in range" true (v >= 0 && v < max_int)
  done

let test_gaussian_moments () =
  let rng = Rng.create ~seed:5 in
  let xs = Array.init 200_000 (fun _ -> Rng.gaussian rng) in
  check_in_range "mean" ~lo:(-0.01) ~hi:0.01 (D.mean xs);
  check_in_range "std" ~lo:0.99 ~hi:1.01 (D.std xs);
  check_in_range "skew" ~lo:(-0.03) ~hi:0.03 (D.skewness xs);
  check_in_range "kurtosis" ~lo:(-0.05) ~hi:0.05 (D.kurtosis_excess xs)

let test_gaussian_normality () =
  let rng = Rng.create ~seed:6 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  let g = Spv_stats.Gaussian.make ~mu:0.0 ~sigma:1.0 in
  let r = Spv_stats.Kstest.against_gaussian xs g in
  check_in_range "KS p-value" ~lo:0.01 ~hi:1.0 r.Spv_stats.Kstest.p_value

let test_gaussian_mu_sigma () =
  let rng = Rng.create ~seed:7 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian_mu_sigma rng ~mu:10.0 ~sigma:3.0) in
  check_in_range "mean" ~lo:9.95 ~hi:10.05 (D.mean xs);
  check_in_range "std" ~lo:2.95 ~hi:3.05 (D.std xs)

let test_split_independence () =
  let parent = Rng.create ~seed:11 in
  let child = (Rng.split parent 1).(0) in
  let xs = Array.init 5000 (fun _ -> Rng.float parent) in
  let ys = Array.init 5000 (fun _ -> Rng.float child) in
  let rho = Spv_stats.Correlation.sample_correlation xs ys in
  check_in_range "split streams uncorrelated" ~lo:(-0.05) ~hi:0.05 rho

let test_split_cross_stream_correlation () =
  (* Every pair of sibling streams must be (statistically) uncorrelated:
     this is what makes shard-parallel Monte-Carlo sound. *)
  let parent = Rng.create ~seed:17 in
  let streams = Rng.split parent 6 in
  let draws =
    Array.map (fun s -> Array.init 4000 (fun _ -> Rng.float s)) streams
  in
  for i = 0 to Array.length draws - 1 do
    for j = i + 1 to Array.length draws - 1 do
      let rho = Spv_stats.Correlation.sample_correlation draws.(i) draws.(j) in
      check_in_range
        (Printf.sprintf "streams %d/%d uncorrelated" i j)
        ~lo:(-0.06) ~hi:0.06 rho
    done
  done

let test_split_determinism () =
  let mk () = Rng.split (Rng.create ~seed:23) 4 in
  let a = mk () and b = mk () in
  Array.iteri
    (fun i sa ->
      for d = 0 to 31 do
        Alcotest.(check int64)
          (Printf.sprintf "stream %d draw %d equal" i d)
          (Rng.bits64 sa) (Rng.bits64 b.(i))
      done)
    a

let test_split_golden () =
  (* Pins the four-independent-draw child derivation (each child state
     word from its own parent draw through splitmix64).  These values
     changed when the old single Int64.to_int 63-bit funnel was
     replaced — any future change to the derivation must update this
     fixture deliberately. *)
  let streams = Rng.split (Rng.create ~seed:23) 4 in
  let expected =
    [| 0x9D597A6DADD0E87CL; 0x3A199AB9E3EB0560L;
       0x7E18F563A69A9510L; 0xC32634F127CBD3B5L |]
  in
  Array.iteri
    (fun i s ->
      Alcotest.(check int64)
        (Printf.sprintf "stream %d first draw" i)
        expected.(i) (Rng.bits64 s))
    streams

let test_split_rejects_nonpositive () =
  let parent = Rng.create ~seed:29 in
  Alcotest.check_raises "split 0 rejected"
    (Invalid_argument "Rng.split: n <= 0") (fun () ->
      ignore (Rng.split parent 0))

let test_copy () =
  let a = Rng.create ~seed:12 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" a sorted;
  Alcotest.(check bool) "actually shuffled" true (b <> a)

let suite =
  [
    quick "determinism" test_determinism;
    quick "seed sensitivity" test_seed_sensitivity;
    quick "float in [0,1)" test_float_range;
    slow "uniform moments" test_float_moments;
    quick "uniform range" test_uniform;
    slow "int buckets unbiased" test_int_bounds;
    slow "int chi-square unbiased" test_int_chi_square;
    quick "int bound 1" test_int_bound_one;
    quick "int huge bound terminates" test_int_huge_bound;
    slow "gaussian moments" test_gaussian_moments;
    slow "gaussian KS normality" test_gaussian_normality;
    slow "gaussian mu/sigma" test_gaussian_mu_sigma;
    quick "split independence" test_split_independence;
    slow "split cross-stream correlation" test_split_cross_stream_correlation;
    quick "split determinism" test_split_determinism;
    quick "split golden fixture" test_split_golden;
    quick "split rejects n <= 0" test_split_rejects_nonpositive;
    quick "copy" test_copy;
    quick "shuffle is a permutation" test_shuffle_permutation;
  ]
