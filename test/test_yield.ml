open Helpers
module Y = Spv_core.Yield
module P = Spv_core.Pipeline
module Stage = Spv_core.Stage
module C = Spv_stats.Correlation

let pipeline ?(rho = 0.0) ?(n = 4) () =
  let stages =
    Array.init n (fun i ->
        Stage.of_moments
          ~name:(Printf.sprintf "s%d" i)
          ~mu:(100.0 +. float_of_int i)
          ~sigma:5.0 ())
  in
  P.make stages ~corr:(C.uniform ~n ~rho)

let test_independent_exact_formula () =
  let p = pipeline () in
  let t_target = 110.0 in
  let expected =
    Array.fold_left
      (fun acc g -> acc *. Spv_stats.Gaussian.cdf g t_target)
      1.0 (P.stage_gaussians p)
  in
  check_close ~rel:1e-12 "product of Phis" expected
    (Y.independent_exact p ~t_target)

let test_independent_exact_with_deterministic_stage () =
  let stages =
    [| Stage.of_moments ~mu:100.0 ~sigma:0.0 (); Stage.of_moments ~mu:90.0 ~sigma:5.0 () |]
  in
  let p = P.make stages ~corr:(C.independent ~n:2) in
  check_float "passes when below" (Spv_stats.Gaussian.cdf (Spv_stats.Gaussian.make ~mu:90.0 ~sigma:5.0) 101.0)
    (Y.independent_exact p ~t_target:101.0);
  check_float "fails when above" 0.0 (Y.independent_exact p ~t_target:99.0)

let test_estimate_dispatch () =
  (* Independent: estimate = exact product. Correlated: = Clark. *)
  let p0 = pipeline () in
  check_close ~rel:1e-12 "independent dispatch"
    (Y.independent_exact p0 ~t_target:108.0)
    (Y.estimate p0 ~t_target:108.0);
  let p5 = pipeline ~rho:0.5 () in
  check_close ~rel:1e-12 "correlated dispatch"
    (Y.clark_gaussian p5 ~t_target:108.0)
    (Y.estimate p5 ~t_target:108.0)

let test_yield_monotone_in_target () =
  let p = pipeline ~rho:0.3 () in
  let y1 = Y.clark_gaussian p ~t_target:100.0 in
  let y2 = Y.clark_gaussian p ~t_target:110.0 in
  let y3 = Y.clark_gaussian p ~t_target:120.0 in
  Alcotest.(check bool) "monotone" true (y1 < y2 && y2 < y3)

let test_correlation_helps_yield () =
  (* At a fixed tight target, correlated stages fail together, which
     raises the joint yield. *)
  let y0 = Y.monte_carlo (pipeline ~rho:0.0 ()) (Spv_stats.Rng.create ~seed:130) ~n:100_000 ~t_target:107.0 in
  let y9 = Y.monte_carlo (pipeline ~rho:0.9 ()) (Spv_stats.Rng.create ~seed:131) ~n:100_000 ~t_target:107.0 in
  Alcotest.(check bool) "correlation raises yield" true (y9 > y0 +. 0.01)

let test_target_delay_inversion () =
  let p = pipeline ~rho:0.4 () in
  List.iter
    (fun yield ->
      let t = Y.target_delay_for_yield p ~yield in
      check_close ~rel:1e-6 "roundtrip" yield (Y.clark_gaussian p ~t_target:t))
    [ 0.5; 0.8; 0.95 ];
  check_raises_invalid "bad yield" (fun () ->
      ignore (Y.target_delay_for_yield p ~yield:1.5))

let test_per_stage_yield_target () =
  check_close ~rel:1e-5 "paper's 3-stage value" 0.928318
    (Y.per_stage_yield_target ~yield:0.8 ~n_stages:3);
  check_close ~rel:1e-12 "single stage" 0.8
    (Y.per_stage_yield_target ~yield:0.8 ~n_stages:1);
  check_raises_invalid "n=0" (fun () ->
      ignore (Y.per_stage_yield_target ~yield:0.8 ~n_stages:0))

let test_stage_yields () =
  let p = pipeline () in
  let ys = Y.stage_yields p ~t_target:105.0 in
  Alcotest.(check int) "length" 4 (Array.length ys);
  (* Slower stages have lower standalone yield. *)
  Alcotest.(check bool) "ordered" true (ys.(0) > ys.(3));
  check_close ~rel:1e-9 "matches Phi"
    (Spv_stats.Special.big_phi 1.0)
    ys.(0)

let test_mc_agrees_with_exact_independent () =
  let p = pipeline () in
  let t_target = 108.0 in
  let exact = Y.independent_exact p ~t_target in
  let mc = Y.monte_carlo p (Spv_stats.Rng.create ~seed:132) ~n:200_000 ~t_target in
  check_in_range "MC vs exact" ~lo:(exact -. 0.004) ~hi:(exact +. 0.004) mc

let test_mc_distribution_shape () =
  let p = pipeline ~rho:0.2 () in
  let xs = Y.monte_carlo_distribution p (Spv_stats.Rng.create ~seed:133) ~n:50_000 in
  (* Max of Gaussians: right-skewed, mean above the largest stage mean. *)
  Alcotest.(check bool) "mean above jensen" true
    (Spv_stats.Descriptive.mean xs > 103.0);
  Alcotest.(check bool) "right-skewed" true
    (Spv_stats.Descriptive.skewness xs > 0.0)

let test_wilson_interval () =
  (* Known value: 8/10 at 95% -> approximately (0.49, 0.94). *)
  let lo, hi = Y.wilson_interval ~successes:8 ~trials:10 ~confidence:0.95 in
  check_in_range "lower" ~lo:0.47 ~hi:0.51 lo;
  check_in_range "upper" ~lo:0.92 ~hi:0.96 hi;
  (* Degenerate corners stay in [0,1]. *)
  let lo0, _ = Y.wilson_interval ~successes:0 ~trials:50 ~confidence:0.95 in
  check_float "zero successes lower" 0.0 lo0;
  let _, hi1 = Y.wilson_interval ~successes:50 ~trials:50 ~confidence:0.95 in
  check_float "all successes upper" 1.0 hi1;
  check_raises_invalid "bad trials" (fun () ->
      ignore (Y.wilson_interval ~successes:0 ~trials:0 ~confidence:0.9))

let test_wilson_covers_truth () =
  (* The interval should contain the true yield in the vast majority of
     repeats. *)
  let p = pipeline ~rho:0.2 () in
  let t_target = 108.0 in
  let truth = Y.monte_carlo p (Spv_stats.Rng.create ~seed:300) ~n:400_000 ~t_target in
  let n = 1000 in
  let covered = ref 0 in
  for k = 1 to 40 do
    let y = Y.monte_carlo p (Spv_stats.Rng.create ~seed:(300 + k)) ~n ~t_target in
    let successes = int_of_float (Float.round (y *. float_of_int n)) in
    let lo, hi = Y.wilson_interval ~successes ~trials:n ~confidence:0.95 in
    if truth >= lo && truth <= hi then incr covered
  done;
  Alcotest.(check bool) "95% interval covers >= 90% of repeats" true
    (!covered >= 36)

let test_loss_matches_complement_in_bulk () =
  (* Where 1 - yield is still well-conditioned the stable loss must
     agree with the naive complement. *)
  let p0 = pipeline () in
  check_close ~rel:1e-9 "independent bulk"
    (1.0 -. Y.independent_exact p0 ~t_target:108.0)
    (Y.independent_exact_loss p0 ~t_target:108.0);
  let p5 = pipeline ~rho:0.5 () in
  check_close ~rel:1e-9 "clark bulk"
    (1.0 -. Y.clark_gaussian p5 ~t_target:108.0)
    (Y.clark_gaussian_loss p5 ~t_target:108.0);
  check_close ~rel:1e-9 "dispatch matches complement"
    (1.0 -. Y.estimate p0 ~t_target:108.0)
    (Y.loss p0 ~t_target:108.0)

let test_loss_nonzero_to_8_sigma () =
  (* An 8-sigma target: every naive complement rounds the loss to 0,
     but real dies still fail.  Single stage N(100, 5), target at
     mu + 8 sigma: loss = Q(8) ~ 6.2e-16 per stage. *)
  let stages = [| Stage.of_moments ~mu:100.0 ~sigma:5.0 () |] in
  let p = P.make stages ~corr:(C.independent ~n:1) in
  let t_target = 100.0 +. (8.0 *. 5.0) in
  let q8 = 6.22096057427178e-16 in
  (* At 8 sigma the naive complement is a few ULPs of 1.0 — off by ~7%
     relative; by 10 sigma it is exactly 0.  The stable loss keeps full
     relative precision at both. *)
  Alcotest.(check bool) "naive complement off by > 1% at 8 sigma" true
    (let naive = 1.0 -. Y.independent_exact p ~t_target in
     abs_float (naive -. q8) /. q8 > 0.01);
  Alcotest.(check bool) "naive complement exactly 0 at 10 sigma" true
    (1.0 -. Y.independent_exact p ~t_target:150.0 = 0.0);
  check_close ~rel:1e-9 "loss = Q(10) at 10 sigma" 7.61985302416053e-24
    (Y.independent_exact_loss p ~t_target:150.0);
  check_close ~rel:1e-9 "independent loss = Q(8)" q8
    (Y.independent_exact_loss p ~t_target);
  check_close ~rel:1e-9 "clark loss = Q(8)" q8
    (Y.clark_gaussian_loss p ~t_target);
  (* Four independent 8-sigma stages: loss ~ 4 Q(8). *)
  let p4 =
    P.make
      (Array.init 4 (fun i ->
           Stage.of_moments ~name:(Printf.sprintf "s%d" i) ~mu:100.0
             ~sigma:5.0 ()))
      ~corr:(C.independent ~n:4)
  in
  check_close ~rel:1e-9 "4-stage loss = 4 Q(8)" (4.0 *. q8)
    (Y.independent_exact_loss p4 ~t_target)

let test_loss_deterministic_stage () =
  let stages =
    [| Stage.of_moments ~mu:100.0 ~sigma:0.0 ();
       Stage.of_moments ~mu:90.0 ~sigma:5.0 () |]
  in
  let p = P.make stages ~corr:(C.independent ~n:2) in
  check_close ~rel:1e-9 "loss below step"
    (1.0 -. Y.independent_exact p ~t_target:101.0)
    (Y.independent_exact_loss p ~t_target:101.0);
  check_float "loss above step" 1.0 (Y.independent_exact_loss p ~t_target:99.0)

let prop_yield_bounded =
  prop "yield in [0,1]"
    QCheck2.Gen.(pair (float_range 50.0 200.0) (float_bound_inclusive 0.9))
    (fun (t_target, rho) ->
      let y = Y.clark_gaussian (pipeline ~rho ()) ~t_target in
      y >= 0.0 && y <= 1.0)

let prop_independent_below_min_stage =
  (* The pipeline can never yield better than its worst stage. *)
  prop "joint yield <= min stage yield"
    QCheck2.Gen.(float_range 90.0 130.0)
    (fun t_target ->
      let p = pipeline () in
      let joint = Y.independent_exact p ~t_target in
      let min_stage =
        Array.fold_left Float.min 1.0 (Y.stage_yields p ~t_target)
      in
      joint <= min_stage +. 1e-12)

let suite =
  [
    quick "independent exact formula" test_independent_exact_formula;
    quick "deterministic stage" test_independent_exact_with_deterministic_stage;
    quick "estimate dispatch" test_estimate_dispatch;
    quick "monotone in target" test_yield_monotone_in_target;
    slow "correlation helps yield" test_correlation_helps_yield;
    quick "target delay inversion" test_target_delay_inversion;
    quick "per-stage budget" test_per_stage_yield_target;
    quick "stage yields" test_stage_yields;
    slow "MC vs exact" test_mc_agrees_with_exact_independent;
    slow "MC distribution shape" test_mc_distribution_shape;
    quick "loss matches complement in bulk" test_loss_matches_complement_in_bulk;
    quick "loss nonzero to 8 sigma" test_loss_nonzero_to_8_sigma;
    quick "loss with deterministic stage" test_loss_deterministic_stage;
    quick "wilson interval" test_wilson_interval;
    slow "wilson coverage" test_wilson_covers_truth;
    prop_yield_bounded;
    prop_independent_below_min_stage;
  ]
