open Helpers
module S = Spv_stats.Special

(* Reference values from Abramowitz & Stegun / standard tables. *)

let test_erf_values () =
  check_float ~eps:1e-9 "erf(0)" 0.0 (S.erf 0.0);
  check_float ~eps:1e-8 "erf(1)" 0.8427007929497149 (S.erf 1.0);
  check_float ~eps:1e-8 "erf(0.5)" 0.5204998778130465 (S.erf 0.5);
  check_float ~eps:1e-8 "erf(2)" 0.9953222650189527 (S.erf 2.0);
  check_float ~eps:1e-8 "erf(-1)" (-0.8427007929497149) (S.erf (-1.0))

let test_erfc_values () =
  check_float ~eps:1e-8 "erfc(0)" 1.0 (S.erfc 0.0);
  check_close ~rel:1e-8 "erfc(1)" 0.15729920705028513 (S.erfc 1.0);
  check_close ~rel:1e-7 "erfc(3)" 2.209049699858544e-05 (S.erfc 3.0);
  (* Deep tail must stay accurate in relative terms. *)
  check_close ~rel:1e-6 "erfc(5)" 1.5374597944280351e-12 (S.erfc 5.0);
  check_float ~eps:1e-8 "erfc(-1)" (2.0 -. 0.15729920705028513) (S.erfc (-1.0))

let test_erf_erfc_complementarity () =
  List.iter
    (fun x -> check_float ~eps:1e-12 "erf + erfc = 1" 1.0 (S.erf x +. S.erfc x))
    [ -3.0; -1.0; -0.1; 0.0; 0.5; 1.5; 4.0 ]

let test_phi () =
  check_float ~eps:1e-12 "phi(0)" (1.0 /. sqrt (2.0 *. Float.pi)) (S.phi 0.0);
  check_close ~rel:1e-10 "phi(1)" 0.24197072451914337 (S.phi 1.0);
  check_float ~eps:1e-15 "phi symmetric" (S.phi 1.3) (S.phi (-1.3))

let test_big_phi () =
  check_float ~eps:1e-12 "Phi(0)" 0.5 (S.big_phi 0.0);
  check_close ~rel:1e-8 "Phi(1.96)" 0.9750021048517795 (S.big_phi 1.96);
  check_close ~rel:1e-8 "Phi(-1)" 0.15865525393145707 (S.big_phi (-1.0));
  check_close ~rel:1e-8 "Phi(2.5)" 0.9937903346742238 (S.big_phi 2.5)

let test_big_phi_inv_roundtrip () =
  List.iter
    (fun p ->
      check_float ~eps:1e-9 (Printf.sprintf "Phi(Phi^-1(%g))" p) p
        (S.big_phi (S.big_phi_inv p)))
    [ 1e-10; 1e-6; 0.01; 0.02425; 0.3; 0.5; 0.8; 0.9283; 0.97575; 0.999; 1.0 -. 1e-9 ]

let test_big_phi_inv_values () =
  check_float ~eps:1e-9 "Phi^-1(0.5)" 0.0 (S.big_phi_inv 0.5);
  check_close ~rel:1e-8 "Phi^-1(0.975)" 1.959963984540054 (S.big_phi_inv 0.975);
  check_close ~rel:1e-8 "Phi^-1(0.8)" 0.8416212335729143 (S.big_phi_inv 0.8)

let test_big_phi_inv_domain () =
  check_raises_invalid "p=0" (fun () -> S.big_phi_inv 0.0);
  check_raises_invalid "p=1" (fun () -> S.big_phi_inv 1.0);
  check_raises_invalid "p=-1" (fun () -> S.big_phi_inv (-1.0));
  check_raises_invalid "p=2" (fun () -> S.big_phi_inv 2.0)

let test_log_big_phi () =
  List.iter
    (fun x ->
      check_close ~rel:1e-8
        (Printf.sprintf "log Phi(%g) consistent" x)
        (log (S.big_phi x))
        (S.log_big_phi x))
    [ -5.0; -2.0; 0.0; 1.0 ];
  (* Deep tail: compare against the asymptotic identity via erfc. *)
  let x = -20.0 in
  let expected = log (0.5 *. S.erfc (-.x /. sqrt 2.0)) in
  check_close ~rel:1e-6 "log Phi(-20)" expected (S.log_big_phi x)

let test_upper_tail () =
  (* Moderate range: agrees with the naive complement while that is
     still well-conditioned. *)
  check_close ~rel:1e-12 "tail at 0" 0.5 (S.upper_tail 0.0);
  check_close ~rel:1e-10 "tail at 1" (1.0 -. S.big_phi 1.0) (S.upper_tail 1.0);
  check_close ~rel:1e-9 "tail at 3" (1.0 -. S.big_phi 3.0) (S.upper_tail 3.0);
  (* Deep tail: 1. -. big_phi cancels to 0 past ~8 sigma, but the
     erfc-backed tail keeps full relative precision (reference values
     from the asymptotic series / mpmath). *)
  check_close ~rel:1e-9 "tail at 8" 6.22096057427178e-16 (S.upper_tail 8.0);
  check_close ~rel:1e-9 "tail at 10" 7.61985302416053e-24 (S.upper_tail 10.0);
  check_close ~rel:1e-8 "tail at 20" 2.75362411860623e-89 (S.upper_tail 20.0);
  Alcotest.(check bool) "naive complement underflows at 10" true
    (1.0 -. S.big_phi 10.0 = 0.0);
  (* Left side is the well-conditioned CDF reflection. *)
  check_close ~rel:1e-12 "tail at -2" (S.big_phi 2.0) (S.upper_tail (-2.0))

let test_normal_wrappers () =
  check_float ~eps:1e-12 "cdf at mean" 0.5 (S.normal_cdf ~mu:10.0 ~sigma:2.0 10.0);
  check_close ~rel:1e-10 "pdf peak" (S.phi 0.0 /. 2.0)
    (S.normal_pdf ~mu:10.0 ~sigma:2.0 10.0);
  check_close ~rel:1e-10 "quantile"
    (10.0 +. (2.0 *. S.big_phi_inv 0.9))
    (S.normal_quantile ~mu:10.0 ~sigma:2.0 ~p:0.9);
  (* Degenerate sigma: step CDF. *)
  check_float "step below" 0.0 (S.normal_cdf ~mu:5.0 ~sigma:0.0 4.9);
  check_float "step above" 1.0 (S.normal_cdf ~mu:5.0 ~sigma:0.0 5.0)

let prop_phi_inv_monotone =
  prop "Phi^-1 monotone" QCheck2.Gen.(pair (float_bound_exclusive 1.0) (float_bound_exclusive 1.0))
    (fun (a, b) ->
      let a = Float.max a 1e-12 and b = Float.max b 1e-12 in
      a = b || (a < b) = (S.big_phi_inv a < S.big_phi_inv b))

let prop_cdf_bounds =
  prop "Phi in [0,1]" QCheck2.Gen.(float_range (-50.0) 50.0)
    (fun x ->
      let v = S.big_phi x in
      v >= 0.0 && v <= 1.0)

let suite =
  [
    quick "erf values" test_erf_values;
    quick "erfc values" test_erfc_values;
    quick "erf/erfc complementarity" test_erf_erfc_complementarity;
    quick "phi" test_phi;
    quick "big_phi" test_big_phi;
    quick "big_phi_inv roundtrip" test_big_phi_inv_roundtrip;
    quick "big_phi_inv values" test_big_phi_inv_values;
    quick "big_phi_inv domain" test_big_phi_inv_domain;
    quick "log_big_phi" test_log_big_phi;
    quick "upper_tail" test_upper_tail;
    quick "normal wrappers" test_normal_wrappers;
    prop_phi_inv_monotone;
    prop_cdf_bounds;
  ]
