(* The serve daemon's contracts under test:

   1. Golden transcript: from a fresh daemon, a fixed request
      transcript produces byte-identical response bytes, and the row
      payloads are independent of the per-request jobs/workers knobs
      (trial-level AND scenario-level parallelism never change bytes).

   2. Honesty: every embedded row is byte-identical to the one-shot
      [Sweep.run] JSONL for the same grid and seed.

   3. Robustness: malformed requests (truncated JSON, unknown
      schema_version, bad method names) each yield one structured
      error row with the documented status/code pair — and the daemon
      keeps serving afterwards.

   4. The LRU context cache: deterministic hit/miss/eviction counters,
      MRU-first ordering, and cached contexts that fingerprint equal
      to freshly built ones.

   5. Deadlines (under an injected clock): an exceeded budget produces
      a single deadline_exceeded row — never partial output. *)

module Grid = Spv_workload.Grid
module Sweep = Spv_workload.Sweep
module Serve = Spv_workload.Serve
module Engine = Spv_engine.Engine
module Errors = Spv_robust.Errors

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let grid_text =
  "stages 100,6 100,6 95,5\n\
   rho 0.3\n\
   circuit chain10\n\
   inter_vth_mv 60\n\
   targets 300:400:3\n\
   method clark,mc,importance\n\
   samples 1500\n\
   shards 4\n"

(* 3 contexts (moments nominal + chain10 x {nominal, vth60mv}),
   3 methods x 3 targets each. *)
let n_groups = 3
let n_rows = n_groups * 3 * 3

let embedded_row line =
  let marker = "\"row\":" in
  let ml = String.length marker in
  let rec find i =
    if i + ml > String.length line then None
    else if String.sub line i ml = marker then
      Some (String.sub line (i + ml) (String.length line - i - ml - 1))
    else find (i + 1)
  in
  find 0

let rows_of ~request_id lines =
  List.filter_map
    (fun l ->
      if
        contains l "\"kind\":\"row\""
        && contains l (Printf.sprintf "\"request_id\":\"%s\"" request_id)
      then embedded_row l
      else None)
    lines

(* ---- golden transcript ----------------------------------------------- *)

let transcript_requests =
  [
    Serve.request_line ~request_id:"q1" ~seed:7 ~jobs:1 ~workers:1
      ~grid:grid_text ();
    Serve.request_line ~request_id:"q2" ~seed:7 ~jobs:4 ~workers:2
      ~grid:grid_text ();
    "{\"schema_version\":1,\"request_id\":\"q3\",\"grid\":";
    Serve.request_line ~request_id:"q4" ~seed:9 ~grid:grid_text ();
  ]

let run_transcript () =
  let d = Serve.create () in
  List.concat_map (Serve.handle_line d) transcript_requests

let test_transcript_byte_identical () =
  let t1 = run_transcript () and t2 = run_transcript () in
  Alcotest.(check (list string))
    "two fresh daemons, same transcript, same bytes" t1 t2;
  let rows1 = rows_of ~request_id:"q1" t1
  and rows2 = rows_of ~request_id:"q2" t1 in
  Alcotest.(check int) "q1 row count" n_rows (List.length rows1);
  Alcotest.(check (list string))
    "rows independent of jobs (1 vs 4) and workers (1 vs 2)" rows1 rows2

let test_rows_match_one_shot_sweep () =
  let t = run_transcript () in
  let grid =
    match Grid.of_string grid_text with
    | Ok g -> g
    | Error e -> Alcotest.failf "grid: %s" (Grid.parse_error_to_string e)
  in
  let one_shot = Sweep.run ~jobs:1 ~seed:7 grid in
  let expected =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Sweep.to_jsonl one_shot))
  in
  Alcotest.(check (list string))
    "served rows = one-shot sweep JSONL, byte for byte" expected
    (rows_of ~request_id:"q1" t)

let test_done_row_reports_cache_counters () =
  let t = run_transcript () in
  let done_of rid =
    match
      List.find_opt
        (fun l ->
          contains l "\"kind\":\"done\""
          && contains l (Printf.sprintf "\"request_id\":\"%s\"" rid))
        t
    with
    | Some l -> l
    | None -> Alcotest.failf "no done row for %s" rid
  in
  let d1 = done_of "q1" and d2 = done_of "q2" and d4 = done_of "q4" in
  Alcotest.(check bool) "q1: all misses" true
    (contains d1 (Printf.sprintf "\"cache_misses\":%d" n_groups)
    && contains d1 "\"cache_hits\":0");
  Alcotest.(check bool) "q2: all hits" true
    (contains d2 (Printf.sprintf "\"cache_hits\":%d" n_groups));
  (* q4 reuses the same contexts at a different seed: still hits *)
  Alcotest.(check bool) "q4: seed does not key the cache" true
    (contains d4 (Printf.sprintf "\"cache_hits\":%d" (2 * n_groups)));
  Alcotest.(check bool) "done rows carry status ok / code 0" true
    (contains d1 "\"status\":\"ok\"" && contains d1 "\"code\":0")

(* ---- malformed requests ---------------------------------------------- *)

let test_malformed_requests_structured_errors () =
  let d = Serve.create () in
  let expect_error line ~rid ~status ~code =
    match Serve.handle_line d line with
    | [ e ] ->
        Alcotest.(check bool)
          (Printf.sprintf "error row kind (%s)" status)
          true
          (contains e "\"kind\":\"error\"");
        Alcotest.(check bool)
          (Printf.sprintf "request_id %s" rid)
          true (contains e (Printf.sprintf "\"request_id\":%s" rid));
        Alcotest.(check bool) status true
          (contains e (Printf.sprintf "\"status\":\"%s\"" status));
        Alcotest.(check bool)
          (Printf.sprintf "code %d" code)
          true
          (contains e (Printf.sprintf "\"code\":%d" code))
    | other ->
        Alcotest.failf "expected one error row, got %d line(s)"
          (List.length other)
  in
  (* truncated JSON: no recoverable request id *)
  expect_error "{\"schema_version\":1,\"request_id\":\"x\",\"grid\":"
    ~rid:"null" ~status:"parse_error" ~code:3;
  (* unknown schema version *)
  expect_error "{\"schema_version\":99,\"request_id\":\"v\",\"grid\":\"\"}"
    ~rid:"\"v\"" ~status:"domain_error" ~code:6;
  (* bad method name inside the grid *)
  expect_error
    (Serve.request_line ~request_id:"m"
       ~grid:"stages 100,6\ntargets 120\nmethod warlock\n" ())
    ~rid:"\"m\"" ~status:"parse_error" ~code:3;
  (* nested JSON is rejected, not mis-parsed *)
  expect_error "{\"schema_version\":1,\"request_id\":\"n\",\"grid\":{}}"
    ~rid:"null" ~status:"parse_error" ~code:3;
  (* bad parameter *)
  expect_error
    "{\"schema_version\":1,\"request_id\":\"j\",\"jobs\":0,\"grid\":\"stages \
     100,6\\ntargets 120\\n\"}"
    ~rid:"\"j\"" ~status:"domain_error" ~code:6;
  (* the daemon survives all of the above *)
  let ok =
    Serve.handle_line d
      (Serve.request_line ~request_id:"alive"
         ~grid:"stages 100,6\ntargets 120\nmethod clark\n" ())
  in
  Alcotest.(check int) "daemon still serves: row + done" 2 (List.length ok);
  Alcotest.(check bool) "status ok" true
    (contains (List.nth ok 1) "\"status\":\"ok\"")

let test_error_codes_match_robust_taxonomy () =
  (* Serve duplicates the exit codes (it sits below Spv_robust); pin
     the mirror against the authoritative table. *)
  Alcotest.(check int) "parse" 3
    (Errors.exit_code (Errors.parse "x"));
  Alcotest.(check int) "domain" 6
    (Errors.exit_code (Errors.domain ~param:"p" "x"));
  Alcotest.(check int) "internal" 7
    (Errors.exit_code (Errors.internal ~where:"w" "x"));
  Alcotest.(check int) "deadline" 10
    (Errors.exit_code (Errors.deadline ~where:"serve" ~budget_ms:1));
  Alcotest.(check bool) "deadline message names the budget" true
    (contains
       (Errors.to_string (Errors.deadline ~where:"serve" ~budget_ms:250))
       "250 ms")

(* ---- LRU cache ------------------------------------------------------- *)

let test_cache_lru_order_and_eviction () =
  let c = Serve.Cache.create ~capacity:2 in
  let entry () =
    {
      Serve.Cache.ctx =
        Engine.Ctx.of_pipeline
          (Spv_core.Pipeline.make
             [| Spv_core.Stage.of_moments ~mu:100.0 ~sigma:5.0 () |]
             ~corr:(Spv_stats.Correlation.uniform ~n:1 ~rho:0.0));
      macro_hits = 0;
      macro_misses = 0;
    }
  in
  Alcotest.(check bool) "empty miss" true (Serve.Cache.find c "a" = None);
  Serve.Cache.add c "a" (entry ());
  Serve.Cache.add c "b" (entry ());
  Alcotest.(check (list string)) "MRU first" [ "b"; "a" ] (Serve.Cache.keys c);
  (* touching a moves it to the front *)
  Alcotest.(check bool) "hit a" true (Serve.Cache.find c "a" <> None);
  Alcotest.(check (list string)) "a promoted" [ "a"; "b" ]
    (Serve.Cache.keys c);
  (* inserting over capacity evicts the LRU tail (now b) *)
  Serve.Cache.add c "c" (entry ());
  Alcotest.(check (list string)) "b evicted" [ "c"; "a" ]
    (Serve.Cache.keys c);
  Alcotest.(check int) "evictions" 1 (Serve.Cache.evictions c);
  Alcotest.(check int) "hits" 1 (Serve.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Serve.Cache.misses c);
  Alcotest.(check int) "length bounded" 2 (Serve.Cache.length c);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Serve.Cache.create: capacity <= 0") (fun () ->
      ignore (Serve.Cache.create ~capacity:0))

let test_capacity_one_daemon_thrashes_deterministically () =
  let d = Serve.create ~capacity:1 () in
  let t1 =
    List.concat_map (Serve.handle_line d)
      [ Serve.request_line ~request_id:"q1" ~seed:7 ~grid:grid_text () ]
  in
  (* 3 groups through a 1-entry cache: all misses, 2 evictions *)
  let done1 = List.nth t1 (List.length t1 - 1) in
  Alcotest.(check bool) "all misses" true
    (contains done1 (Printf.sprintf "\"cache_misses\":%d" n_groups));
  Alcotest.(check bool) "evictions = groups - capacity" true
    (contains done1 (Printf.sprintf "\"cache_evictions\":%d" (n_groups - 1)));
  (* rows are nonetheless byte-identical to a big-cache daemon's *)
  let d2 = Serve.create ~capacity:32 () in
  let t2 =
    List.concat_map (Serve.handle_line d2)
      [ Serve.request_line ~request_id:"q1" ~seed:7 ~grid:grid_text () ]
  in
  Alcotest.(check (list string))
    "rows independent of cache capacity"
    (rows_of ~request_id:"q1" t1)
    (rows_of ~request_id:"q1" t2)

let test_cached_ctx_fingerprints_match_fresh_builds () =
  let d = Serve.create () in
  ignore
    (Serve.handle_line d
       (Serve.request_line ~request_id:"q" ~seed:7 ~grid:grid_text ()));
  let grid =
    match Grid.of_string grid_text with Ok g -> g | Error _ -> assert false
  in
  List.iter
    (fun source ->
      let processes =
        match source with
        | Grid.Moments _ -> [ Grid.nominal ]
        | Grid.Circuit _ -> grid.Grid.processes
      in
      List.iter
        (fun process ->
          let key = Serve.scenario_key ~mode:Engine.Flat source process in
          match Serve.Cache.find (Serve.cache d) key with
          | None -> Alcotest.failf "no cache entry for %s" key
          | Some e ->
              let fresh =
                Sweep.ctx_for ~tech:Spv_process.Tech.bptm70 source process
              in
              Alcotest.(check string)
                (Printf.sprintf "fingerprint of cached ctx (%s)" key)
                (Engine.Ctx.fingerprint fresh)
                (Engine.Ctx.fingerprint e.Serve.Cache.ctx))
        processes)
    grid.Grid.sources

let test_scenario_keys_separate_what_must_differ () =
  let m1 =
    Grid.Moments { label = "m"; stages = [| (100.0, 6.0) |]; rho = 0.2 }
  in
  let m2 =
    Grid.Moments { label = "m"; stages = [| (100.0, 6.0) |]; rho = 0.3 }
  in
  let c =
    Grid.Circuit
      { label = "c"; net = Spv_circuit.Generators.inverter_chain ~depth:4 () }
  in
  let vth = { Grid.p_label = "vth60mv"; inter_vth_mv = Some 60.0 } in
  let key = Serve.scenario_key in
  Alcotest.(check bool) "rho keys differently" true
    (key ~mode:Engine.Flat m1 Grid.nominal
    <> key ~mode:Engine.Flat m2 Grid.nominal);
  Alcotest.(check bool) "process keys differently" true
    (key ~mode:Engine.Flat c Grid.nominal <> key ~mode:Engine.Flat c vth);
  Alcotest.(check bool) "mode keys differently" true
    (key ~mode:Engine.Flat c Grid.nominal
    <> key ~mode:Engine.Hierarchical c Grid.nominal);
  Alcotest.(check string) "same triple, same key"
    (key ~mode:Engine.Flat c vth)
    (key ~mode:Engine.Flat c vth)

(* ---- deadlines ------------------------------------------------------- *)

(* A fake clock that advances 10 simulated milliseconds per reading
   makes deadline behaviour a pure function of poll count. *)
let ticking_clock ?(step_ms = 10.0) () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. (step_ms /. 1000.0);
    !t

let test_deadline_yields_single_error_row () =
  let d = Serve.create ~clock:(ticking_clock ()) () in
  let out =
    Serve.handle_line d
      (Serve.request_line ~request_id:"slow" ~deadline_ms:15 ~grid:grid_text
         ())
  in
  (match out with
  | [ e ] ->
      Alcotest.(check bool) "deadline_exceeded" true
        (contains e "\"status\":\"deadline_exceeded\"");
      Alcotest.(check bool) "code 10" true (contains e "\"code\":10");
      Alcotest.(check bool) "attributed" true
        (contains e "\"request_id\":\"slow\"");
      Alcotest.(check bool) "budget in message" true (contains e "15 ms")
  | other ->
      Alcotest.failf "expected exactly one error row, got %d line(s)"
        (List.length other));
  (* no deadline => the same daemon still completes the request *)
  let ok =
    Serve.handle_line d
      (Serve.request_line ~request_id:"ok" ~seed:7 ~grid:grid_text ())
  in
  Alcotest.(check int) "full response after a deadline" (n_rows + 1)
    (List.length ok)

let test_generous_deadline_does_not_fire () =
  let d = Serve.create ~clock:(ticking_clock ()) () in
  let out =
    Serve.handle_line d
      (Serve.request_line ~request_id:"q" ~seed:7 ~deadline_ms:10_000_000
         ~grid:grid_text ())
  in
  Alcotest.(check int) "rows + done" (n_rows + 1) (List.length out);
  let plain = Serve.create () in
  let expected =
    Serve.handle_line plain
      (Serve.request_line ~request_id:"q" ~seed:7 ~grid:grid_text ())
  in
  (* deadline plumbing must not change a byte of the rows *)
  Alcotest.(check (list string))
    "rows identical with and without a deadline"
    (rows_of ~request_id:"q" expected)
    (rows_of ~request_id:"q" out)

(* ---- transports ------------------------------------------------------ *)

let test_serve_channels_round_trip () =
  let tmp_in = Filename.temp_file "spv_serve" ".in" in
  let tmp_out = Filename.temp_file "spv_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove tmp_in with Sys_error _ -> ());
      try Sys.remove tmp_out with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text tmp_in (fun oc ->
          List.iter
            (fun l ->
              Out_channel.output_string oc l;
              Out_channel.output_char oc '\n')
            transcript_requests);
      let d = Serve.create () in
      In_channel.with_open_text tmp_in (fun ic ->
          Out_channel.with_open_text tmp_out (fun oc ->
              Serve.serve_channels d ic oc));
      let got =
        In_channel.with_open_text tmp_out In_channel.input_lines
      in
      Alcotest.(check (list string))
        "channel transport = handle_line, byte for byte" (run_transcript ())
        got)

let suite =
  [
    Alcotest.test_case "golden transcript: byte-identical across daemons, \
                        jobs and workers" `Quick test_transcript_byte_identical;
    Alcotest.test_case "served rows = one-shot sweep JSONL" `Quick
      test_rows_match_one_shot_sweep;
    Alcotest.test_case "done rows report deterministic cache counters" `Quick
      test_done_row_reports_cache_counters;
    Alcotest.test_case "malformed requests: structured errors, daemon \
                        survives" `Quick test_malformed_requests_structured_errors;
    Alcotest.test_case "serve error codes mirror Errors.exit_code" `Quick
      test_error_codes_match_robust_taxonomy;
    Alcotest.test_case "cache: LRU order, eviction, counters" `Quick
      test_cache_lru_order_and_eviction;
    Alcotest.test_case "cache: capacity never changes row bytes" `Quick
      test_capacity_one_daemon_thrashes_deterministically;
    Alcotest.test_case "cache: cached contexts fingerprint-equal fresh builds"
      `Quick test_cached_ctx_fingerprints_match_fresh_builds;
    Alcotest.test_case "scenario keys separate rho/process/mode" `Quick
      test_scenario_keys_separate_what_must_differ;
    Alcotest.test_case "deadline: one error row, no partial output" `Quick
      test_deadline_yields_single_error_row;
    Alcotest.test_case "deadline: generous budget changes nothing" `Quick
      test_generous_deadline_does_not_fire;
    Alcotest.test_case "serve_channels round-trips a transcript" `Quick
      test_serve_channels_round_trip;
  ]
