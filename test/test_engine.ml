(* The engine's two contracts under test here:

   1. Determinism: every estimate is a pure function of (seed, shards);
      the worker-domain count [jobs] must never change a single bit of
      the result.

   2. Agreement: each taxonomy method must reproduce the legacy
      closed-form / sampling result it wraps.  *)

module Engine = Spv_engine.Engine
module Par = Spv_engine.Par
module G = Spv_stats.Gaussian
module Gen = Spv_circuit.Generators
module Pipeline = Spv_core.Pipeline
module Yield = Spv_core.Yield

let tech = Spv_process.Tech.bptm70

let bits f = Int64.bits_of_float f

let check_bits name a b =
  Alcotest.(check int64) name (bits a) (bits b)

let moments_pipeline ?(rho = 0.3) () =
  let stages =
    Array.init 6 (fun i ->
        Spv_core.Stage.of_moments
          ~mu:(100.0 +. (2.0 *. float_of_int i))
          ~sigma:(3.0 +. (0.5 *. float_of_int i))
          ())
  in
  Pipeline.make stages ~corr:(Spv_stats.Correlation.uniform ~n:6 ~rho)

let moments_ctx ?rho () = Engine.Ctx.of_pipeline (moments_pipeline ?rho ())

(* Three structurally different circuits, as the determinism contract
   must hold for any workload shape (stage counts both below and above
   the shard count). *)
let circuit_cases () =
  let ff = Spv_process.Flipflop.default tech in
  [
    ("chain 4x6", Gen.inverter_chain_pipeline ~stages:4 ~depth:6 ());
    ("variable depth", Gen.variable_depth_pipeline ~depths:[| 5; 7; 9 |] ());
    ( "heterogeneous 10",
      Array.init 10 (fun i -> Gen.inverter_chain ~depth:(3 + (i mod 4)) ()) );
  ]
  |> List.map (fun (name, nets) -> (name, Engine.Ctx.of_circuits ~ff tech nets))

(* ---- determinism across jobs ---------------------------------------- *)

let test_adaptive_yield_jobs_invariant () =
  List.iter
    (fun (name, ctx) ->
      let t_target = G.quantile (Engine.Ctx.delay_distribution ctx) ~p:0.85 in
      let run jobs =
        Engine.yield ~method_:Engine.Adaptive_mc ~jobs ~seed:7 ~batch:256
          ~min_samples:512 ~max_samples:8192 ctx ~t_target
      in
      let a = run 1 and b = run 4 in
      check_bits (name ^ ": value") a.Engine.value b.Engine.value;
      check_bits (name ^ ": se") a.Engine.std_error b.Engine.std_error;
      Alcotest.(check int)
        (name ^ ": n") a.Engine.n_samples b.Engine.n_samples;
      Alcotest.(check bool)
        (name ^ ": stop") true
        (a.Engine.stop = b.Engine.stop))
    (circuit_cases ())

let test_gate_level_delays_jobs_invariant () =
  List.iter
    (fun (name, ctx) ->
      let run jobs = Engine.gate_level_delays ~jobs ~seed:11 ctx ~n:600 in
      let a = run 1 and b = run 4 in
      Alcotest.(check (array int64))
        (name ^ ": samples") (Array.map bits a) (Array.map bits b))
    (circuit_cases ())

let test_sample_delays_jobs_invariant () =
  let ctx = moments_ctx () in
  let run jobs = Engine.sample_delays ~jobs ~seed:3 ctx ~n:2000 in
  Alcotest.(check (array int64))
    "sample_delays" (Array.map bits (run 1)) (Array.map bits (run 4))

let test_stage_samples_jobs_invariant () =
  let _, ctx = List.hd (circuit_cases ()) in
  let run jobs = Engine.gate_level_stage_samples ~jobs ~seed:5 ctx ~n:400 in
  let a = run 1 and b = run 4 in
  Array.iteri
    (fun s row ->
      Alcotest.(check (array int64))
        (Printf.sprintf "stage %d" s)
        (Array.map bits row) (Array.map bits b.(s)))
    a

let test_jobs_env_fallback () =
  (* Par.default_jobs reads SPV_JOBS; bad values fall back to the
     runtime recommendation. *)
  let with_env v f =
    (match v with
    | Some s -> Unix.putenv "SPV_JOBS" s
    | None -> Unix.putenv "SPV_JOBS" "");
    Fun.protect ~finally:(fun () -> Unix.putenv "SPV_JOBS" "") f
  in
  with_env (Some "3") (fun () ->
      Alcotest.(check int) "SPV_JOBS=3" 3 (Par.default_jobs ()));
  with_env (Some "0") (fun () ->
      Alcotest.(check int) "SPV_JOBS=0 falls back"
        (Domain.recommended_domain_count ())
        (Par.default_jobs ()));
  with_env (Some "nope") (fun () ->
      Alcotest.(check int) "garbage falls back"
        (Domain.recommended_domain_count ())
        (Par.default_jobs ()))

(* ---- agreement with the legacy estimators ---------------------------- *)

let test_closed_forms_match_yield_module () =
  let p = moments_pipeline () in
  let ctx = Engine.Ctx.of_pipeline p in
  let t_target = 118.0 in
  let clark = Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target in
  check_bits "clark" (Yield.clark_gaussian p ~t_target) clark.Engine.value;
  Alcotest.(check bool) "clark closed form" true
    (clark.Engine.stop = Engine.Closed_form && clark.Engine.n_samples = 0);
  let p0 = moments_pipeline ~rho:0.0 () in
  let ctx0 = Engine.Ctx.of_pipeline p0 in
  let ind = Engine.yield ~method_:Engine.Exact_independent ctx0 ~t_target in
  check_bits "independent" (Yield.independent_exact p0 ~t_target)
    ind.Engine.value

let test_mc_agrees_with_closed_form () =
  let ctx = moments_ctx () in
  let t_target = G.quantile (Engine.Ctx.delay_distribution ctx) ~p:0.8 in
  let mc = Engine.yield ~method_:Engine.Mc ~n:40_000 ctx ~t_target in
  let clark = Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target in
  Alcotest.(check bool)
    (Printf.sprintf "mc %.4f vs clark %.4f" mc.Engine.value clark.Engine.value)
    true
    (Float.abs (mc.Engine.value -. clark.Engine.value) < 0.015);
  Alcotest.(check bool) "fixed-n" true (mc.Engine.stop = Engine.Fixed_n);
  Alcotest.(check int) "n echoed" 40_000 mc.Engine.n_samples

let test_importance_matches_plain_mc () =
  let ctx = moments_ctx () in
  let t_target = G.quantile (Engine.Ctx.delay_distribution ctx) ~p:0.95 in
  let imp = Engine.yield ~method_:Engine.Importance ~n:20_000 ctx ~t_target in
  let clark = Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target in
  Alcotest.(check bool)
    (Printf.sprintf "importance %.4f vs clark %.4f" imp.Engine.value
       clark.Engine.value)
    true
    (Float.abs (imp.Engine.value -. clark.Engine.value) < 0.02)

let test_quadrature_degenerates_to_clark () =
  (* A moments-built pipeline has no inter-die decomposition, so the
     quadrature over the inter-die variable collapses to Clark. *)
  let ctx = moments_ctx () in
  let t_target = 117.0 in
  let q = Engine.yield ~method_:Engine.Quadrature ctx ~t_target in
  let clark = Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target in
  Alcotest.(check bool) "quadrature ~ clark" true
    (Float.abs (q.Engine.value -. clark.Engine.value) < 1e-6)

let test_delay_mean_agrees () =
  let ctx = moments_ctx () in
  let closed = Engine.delay_mean ~method_:Engine.Analytic_clark ctx in
  check_bits "clark mu" (G.mu (Engine.Ctx.delay_distribution ctx))
    closed.Engine.value;
  let mc = Engine.delay_mean ~method_:Engine.Mc ~n:40_000 ctx in
  Alcotest.(check bool)
    (Printf.sprintf "mc mean %.2f vs clark %.2f" mc.Engine.value
       closed.Engine.value)
    true
    (Float.abs (mc.Engine.value -. closed.Engine.value)
    < 4.0 *. mc.Engine.std_error +. 0.3)

let test_recommended_method () =
  Alcotest.(check bool) "correlated -> clark" true
    (Engine.recommended (moments_ctx ~rho:0.4 ()) = Engine.Analytic_clark);
  Alcotest.(check bool) "independent -> exact" true
    (Engine.recommended (moments_ctx ~rho:0.0 ()) = Engine.Exact_independent)

let test_method_names_round_trip () =
  List.iter
    (fun m ->
      match Engine.method_of_string (Engine.method_name m) with
      | Some m' -> Alcotest.(check bool) (Engine.method_name m) true (m = m')
      | None -> Alcotest.failf "%s did not round-trip" (Engine.method_name m))
    Engine.all_methods;
  Alcotest.(check bool) "unknown rejected" true
    (Engine.method_of_string "bogus" = None)

(* ---- adaptive stopping ----------------------------------------------- *)

let test_adaptive_stop_reasons () =
  let ctx = moments_ctx () in
  let t_target = G.quantile (Engine.Ctx.delay_distribution ctx) ~p:0.8 in
  let ok =
    Engine.yield ~batch:512 ~min_samples:512 ~rel_se_target:0.05 ctx ~t_target
  in
  Alcotest.(check bool) "converges" true (ok.Engine.stop = Engine.Converged);
  let capped =
    Engine.yield ~batch:512 ~min_samples:512 ~rel_se_target:1e-6
      ~max_samples:2048 ctx ~t_target
  in
  Alcotest.(check bool) "hits cap" true
    (capped.Engine.stop = Engine.Sample_cap);
  Alcotest.(check int) "cap respected" 2048 capped.Engine.n_samples

(* ---- context refresh -------------------------------------------------- *)

let test_refresh_stage_matches_fresh_context () =
  let ff = Spv_process.Flipflop.default tech in
  let nets = Gen.inverter_chain_pipeline ~stages:3 ~depth:5 () in
  let ctx = Engine.Ctx.of_circuits ~ff tech nets in
  (* Resize every gate of stage 1 in place, as the sizers do. *)
  Array.iter
    (fun g -> Spv_circuit.Netlist.set_size nets.(1) g 2.5)
    (Spv_circuit.Netlist.gate_ids nets.(1));
  let refreshed = Engine.Ctx.refresh_stage ctx 1 in
  let fresh = Engine.Ctx.of_circuits ~ff tech nets in
  let d1 = Engine.Ctx.delay_distribution refreshed in
  let d2 = Engine.Ctx.delay_distribution fresh in
  check_bits "mu" (G.mu d2) (G.mu d1);
  check_bits "sigma" (G.sigma d2) (G.sigma d1);
  Alcotest.(check (array (float 1e-12)))
    "sizes tracked"
    (Engine.Ctx.gate_sizes fresh 1)
    (Engine.Ctx.gate_sizes refreshed 1)

(* ---- argument validation ---------------------------------------------- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_rejects_bad_arguments () =
  let ctx = moments_ctx () in
  expect_invalid "jobs=0" (fun () ->
      Engine.yield ~method_:Engine.Mc ~jobs:0 ~n:16 ctx ~t_target:110.0);
  expect_invalid "shards=0" (fun () ->
      Engine.yield ~method_:Engine.Mc ~shards:0 ~n:16 ctx ~t_target:110.0);
  expect_invalid "n=0" (fun () ->
      Engine.yield ~method_:Engine.Mc ~n:0 ctx ~t_target:110.0);
  expect_invalid "nan target" (fun () ->
      Engine.yield ctx ~t_target:Float.nan);
  expect_invalid "max_samples=0" (fun () ->
      Engine.yield ~max_samples:0 ctx ~t_target:110.0);
  expect_invalid "gate-level on moments ctx" (fun () ->
      Engine.gate_level_delays ctx ~n:16);
  expect_invalid "delay_mean quadrature" (fun () ->
      Engine.delay_mean ~method_:Engine.Quadrature ctx);
  expect_invalid "Par.run jobs=0" (fun () ->
      Par.run ~jobs:0 [| (fun () -> ()) |])

(* ---- Par ------------------------------------------------------------- *)

let test_par_run_preserves_order () =
  let tasks = Array.init 23 (fun i () -> i * i) in
  Alcotest.(check (array int))
    "order" (Array.init 23 (fun i -> i * i)) (Par.run ~jobs:4 tasks);
  Alcotest.(check (array int)) "empty" [||] (Par.run ~jobs:4 [||])

let test_par_run_propagates_exceptions () =
  let boom _ () = failwith "boom" in
  match Par.run ~jobs:3 (Array.init 5 boom) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

let suite =
  [
    Alcotest.test_case "adaptive yield is jobs-invariant" `Slow
      test_adaptive_yield_jobs_invariant;
    Alcotest.test_case "gate-level delays are jobs-invariant" `Slow
      test_gate_level_delays_jobs_invariant;
    Alcotest.test_case "sample_delays is jobs-invariant" `Quick
      test_sample_delays_jobs_invariant;
    Alcotest.test_case "stage samples are jobs-invariant" `Slow
      test_stage_samples_jobs_invariant;
    Alcotest.test_case "SPV_JOBS fallback" `Quick test_jobs_env_fallback;
    Alcotest.test_case "closed forms match Yield" `Quick
      test_closed_forms_match_yield_module;
    Alcotest.test_case "MC agrees with closed form" `Slow
      test_mc_agrees_with_closed_form;
    Alcotest.test_case "importance sampling agrees" `Slow
      test_importance_matches_plain_mc;
    Alcotest.test_case "quadrature degenerates to Clark" `Quick
      test_quadrature_degenerates_to_clark;
    Alcotest.test_case "delay_mean agrees" `Slow test_delay_mean_agrees;
    Alcotest.test_case "recommended method" `Quick test_recommended_method;
    Alcotest.test_case "method names round-trip" `Quick
      test_method_names_round_trip;
    Alcotest.test_case "adaptive stop reasons" `Quick
      test_adaptive_stop_reasons;
    Alcotest.test_case "refresh_stage matches fresh context" `Quick
      test_refresh_stage_matches_fresh_context;
    Alcotest.test_case "rejects bad arguments" `Quick
      test_rejects_bad_arguments;
    Alcotest.test_case "Par.run preserves order" `Quick
      test_par_run_preserves_order;
    Alcotest.test_case "Par.run propagates exceptions" `Quick
      test_par_run_propagates_exceptions;
  ]
