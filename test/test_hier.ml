(* Hierarchical SSTA under test here:

   1. Partition soundness: level bands cover every gate exactly once
      and are a pure function of the netlist structure.

   2. Fidelity: a single-block macro is bit-identical to the
      Block_ssta analysis it wraps, and the gate-level samplers of a
      hierarchical context are bit-identical to the flat ones (macros
      change the closed-form stage model, never the sampled netlists).

   3. Memoisation honesty: the table's hit/miss counters equal the
      distinct (block, process) pairs demanded, an in-place resize
      refreshed through [refresh_block] re-characterises exactly one
      block, and the closed-form flat-vs-hier gap never exceeds the
      reported [hier_bound].  *)

open Helpers
module Engine = Spv_engine.Engine
module Macro = Spv_circuit.Macro
module Netlist = Spv_circuit.Netlist
module Block_ssta = Spv_circuit.Block_ssta
module Gen = Spv_circuit.Generators
module Gd = Spv_process.Gate_delay
module G = Spv_stats.Gaussian
module Sweep = Spv_workload.Sweep
module Grid = Spv_workload.Grid

let tech = Spv_process.Tech.bptm70
let bits = Int64.bits_of_float

let check_bits name a b = Alcotest.(check int64) name (bits a) (bits b)

let check_gd name (a : Gd.t) (b : Gd.t) =
  check_bits (name ^ ": nominal") a.Gd.nominal b.Gd.nominal;
  check_bits (name ^ ": sigma_inter") a.Gd.sigma_inter b.Gd.sigma_inter;
  check_bits (name ^ ": sigma_sys") a.Gd.sigma_sys b.Gd.sigma_sys;
  check_bits (name ^ ": sigma_rand") a.Gd.sigma_rand b.Gd.sigma_rand

let big_net ~seed = Gen.random_logic ~name:"rnd" ~inputs:8 ~gates:600 ~depth:24 ~seed

(* ---- partition ------------------------------------------------------ *)

let test_partition_covers_once () =
  let net = big_net ~seed:7 in
  let blocks = Macro.partition ~target_gates:100 net in
  Alcotest.(check bool) "several bands" true (Array.length blocks > 1);
  let seen = Hashtbl.create 997 in
  Array.iter
    (fun b ->
      Array.iter
        (fun g ->
          if Hashtbl.mem seen g then
            Alcotest.failf "gate %d appears in two bands" g;
          Hashtbl.add seen g ())
        b.Macro.b_gates)
    blocks;
  Alcotest.(check int) "every gate banded" (Netlist.n_gates net)
    (Hashtbl.length seen)

let test_partition_deterministic () =
  let net = big_net ~seed:9 in
  let a = Macro.partition ~target_gates:100 net in
  let b = Macro.partition ~target_gates:100 net in
  Alcotest.(check int) "band count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i ba ->
      let bb = b.(i) in
      Alcotest.(check (array int))
        (Printf.sprintf "band %d gates" i)
        ba.Macro.b_gates bb.Macro.b_gates;
      Alcotest.(check int64)
        (Printf.sprintf "band %d sub-netlist hash" i)
        (Macro.hash ba.Macro.b_net) (Macro.hash bb.Macro.b_net))
    a

(* ---- fidelity ------------------------------------------------------- *)

(* One macro over the whole netlist is exactly the Block_ssta stage
   analysis: [characterise] keeps its output form, and a singleton
   series fold adds nothing. *)
let test_single_macro_is_block_ssta () =
  let net = Gen.random_logic ~name:"s" ~inputs:6 ~gates:80 ~depth:8 ~seed:3 in
  let m = Macro.characterise ~output_load:4.0 tech net in
  Alcotest.(check int) "macro covers all gates" (Netlist.n_gates net)
    m.Macro.n_gates;
  check_gd "singleton series == Block_ssta stage_delay"
    (Macro.stage_delay [| m |])
    (Block_ssta.stage_delay ~output_load:4.0 tech net)

(* Macros replace the closed-form stage model only; the Monte-Carlo
   samplers re-run STA on the original netlists, so gate-level draws
   from a hierarchical context are bit-identical to the flat ones —
   pruned or not. *)
let test_hier_gate_mc_matches_flat () =
  let net = Gen.random_logic ~name:"m" ~inputs:6 ~gates:120 ~depth:10 ~seed:5 in
  let flat = Engine.Ctx.of_circuits tech [| net |] in
  let hier =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~block_gates:40 tech
      [| net |]
  in
  Alcotest.(check bool) "context really banded" true
    (Engine.Ctx.n_blocks hier 0 > 1);
  let a = Engine.gate_level_delays ~seed:7 flat ~n:64 in
  let b = Engine.gate_level_delays ~seed:7 hier ~n:64 in
  Alcotest.(check int) "sample counts" (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_bits (Printf.sprintf "draw %d" i) x b.(i)) a;
  let pruned = Spv_analysis.Static_criticality.prune_ctx hier in
  let c = Engine.gate_level_delays ~seed:7 pruned ~n:64 in
  Array.iteri
    (fun i x -> check_bits (Printf.sprintf "pruned draw %d" i) x c.(i))
    b

(* ---- memoisation ---------------------------------------------------- *)

let test_memo_counts_block_process_pairs () =
  let net = big_net ~seed:11 in
  let table = Macro.Table.create () in
  let build tech =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~macro_table:table
      ~block_gates:100 tech [| net |]
  in
  let ctx = build tech in
  let nb = Engine.Ctx.n_blocks ctx 0 in
  Alcotest.(check bool) "several blocks" true (nb >= 2);
  Alcotest.(check int) "first build characterises every block" nb
    (Macro.Table.misses table);
  Alcotest.(check int) "first build hits nothing" 0 (Macro.Table.hits table);
  let _same = build tech in
  Alcotest.(check int) "same process: all hits" nb (Macro.Table.hits table);
  Alcotest.(check int) "same process: no new misses" nb
    (Macro.Table.misses table);
  let overridden = Spv_process.Tech.with_inter_vth tech ~sigma_mv:55.0 in
  let _o = build overridden in
  Alcotest.(check int) "override re-characterises every block" (2 * nb)
    (Macro.Table.misses table);
  let _back = build tech in
  Alcotest.(check int) "original process still cached" (2 * nb)
    (Macro.Table.hits table);
  Alcotest.(check int) "misses == distinct (block, process) pairs" (2 * nb)
    (Macro.Table.misses table)

let test_refresh_block_recharacterises_one () =
  let net = Gen.random_logic ~name:"r" ~inputs:6 ~gates:240 ~depth:12 ~seed:5 in
  let table = Macro.Table.create () in
  let ctx =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~macro_table:table
      ~block_gates:60 tech [| net |]
  in
  let nb = Engine.Ctx.n_blocks ctx 0 in
  Alcotest.(check bool) "several blocks" true (nb >= 2);
  let blocks = Macro.partition ~target_gates:60 net in
  let g = blocks.(1).Macro.b_gates.(0) in
  Netlist.set_size net g (Netlist.size net g *. 2.0);
  Macro.Table.reset_counters table;
  let refreshed = Engine.Ctx.refresh_block ctx ~stage:0 ~block:1 in
  Alcotest.(check int) "exactly one block re-characterised" 1
    (Macro.Table.misses table);
  Alcotest.(check int) "every other block hits" (nb - 1)
    (Macro.Table.hits table);
  let scratch =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~block_gates:60 tech
      [| net |]
  in
  let dr = Engine.Ctx.delay_distribution refreshed in
  let ds = Engine.Ctx.delay_distribution scratch in
  check_bits "refreshed mu == scratch mu" (G.mu dr) (G.mu ds);
  check_bits "refreshed sigma == scratch sigma" (G.sigma dr) (G.sigma ds)

let test_refresh_block_rejects_wrong_block () =
  let net = Gen.random_logic ~name:"w" ~inputs:6 ~gates:240 ~depth:12 ~seed:6 in
  let ctx =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~block_gates:60 tech
      [| net |]
  in
  Alcotest.(check bool) "several blocks" true (Engine.Ctx.n_blocks ctx 0 >= 2);
  let blocks = Macro.partition ~target_gates:60 net in
  let g = blocks.(0).Macro.b_gates.(0) in
  Netlist.set_size net g (Netlist.size net g *. 2.0);
  check_raises_invalid "naming an unchanged block is refused" (fun () ->
      ignore (Engine.Ctx.refresh_block ctx ~stage:0 ~block:1))

(* ---- refresh x prune masks ------------------------------------------ *)

let test_refresh_drops_exactly_stale_masks () =
  let mk i =
    Gen.random_logic
      ~name:(Printf.sprintf "p%d" i)
      ~inputs:5 ~gates:60 ~depth:8 ~seed:(20 + i)
  in
  let nets = [| mk 0; mk 1 |] in
  let ctx = Engine.Ctx.of_circuits tech nets in
  let masks =
    Array.map (fun net -> Array.make (Netlist.n_nodes net) true) nets
  in
  (* mask one primary input per stage: a definite non-default mask that
     cannot unmask an output *)
  masks.(0).(0) <- false;
  masks.(1).(0) <- false;
  let ctx = Engine.Ctx.with_prune ctx masks in
  let refreshed = Engine.Ctx.refresh_stage ctx 1 in
  match Engine.Ctx.prune_masks refreshed with
  | None -> Alcotest.fail "masks dropped wholesale; expected per-stage drop"
  | Some ms ->
      Alcotest.(check int) "one mask per stage" 2 (Array.length ms);
      Alcotest.(check (array bool)) "untouched stage keeps its mask"
        masks.(0) ms.(0);
      Alcotest.(check bool) "refreshed stage mask reset to all-true" true
        (Array.for_all Fun.id ms.(1))

(* Swapping the stage order re-keys nothing: every block of both
   stages is served from the table (a stage-level hit counts one hit
   per block it reuses), and the swapped context's per-stage models
   really are the swapped originals. *)
let test_swap_stage_order_hits_cache () =
  let a = Gen.random_logic ~name:"sa" ~inputs:5 ~gates:80 ~depth:8 ~seed:31 in
  let b = Gen.random_logic ~name:"sb" ~inputs:5 ~gates:90 ~depth:9 ~seed:32 in
  let table = Macro.Table.create () in
  let build nets =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~macro_table:table
      ~block_gates:30 tech nets
  in
  let c1 = build [| a; b |] in
  let total = Engine.Ctx.n_blocks c1 0 + Engine.Ctx.n_blocks c1 1 in
  Alcotest.(check int) "cold build misses every block" total
    (Macro.Table.misses table);
  Alcotest.(check int) "cold build hits nothing" 0 (Macro.Table.hits table);
  Macro.Table.reset_counters table;
  Alcotest.(check int) "reset clears hits" 0 (Macro.Table.hits table);
  Alcotest.(check int) "reset clears misses" 0 (Macro.Table.misses table);
  let c2 = build [| b; a |] in
  Alcotest.(check int) "swapped stages: every block hits" total
    (Macro.Table.hits table);
  Alcotest.(check int) "swapped stages: nothing re-characterised" 0
    (Macro.Table.misses table);
  check_gd "stage 0 model follows the swap"
    (Engine.Ctx.stage_delay_model c1 0)
    (Engine.Ctx.stage_delay_model c2 1);
  check_gd "stage 1 model follows the swap"
    (Engine.Ctx.stage_delay_model c1 1)
    (Engine.Ctx.stage_delay_model c2 0)

(* A resize confined to one band of a pruned hierarchical context:
   [refresh_block] re-characterises exactly that block and drops
   exactly the refreshed stage's prune mask (now stale), keeping the
   untouched stage's mask byte-for-byte. *)
let test_refresh_block_drops_only_stale_mask () =
  let mk i =
    Gen.random_logic
      ~name:(Printf.sprintf "rb%d" i)
      ~inputs:5 ~gates:120 ~depth:10 ~seed:(40 + i)
  in
  let nets = [| mk 0; mk 1 |] in
  let table = Macro.Table.create () in
  let ctx =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~macro_table:table
      ~block_gates:40 tech nets
  in
  let nb = Engine.Ctx.n_blocks ctx 1 in
  Alcotest.(check bool) "several bands" true (nb >= 2);
  let masks =
    Array.map (fun net -> Array.make (Netlist.n_nodes net) true) nets
  in
  masks.(0).(0) <- false;
  masks.(1).(0) <- false;
  let ctx = Engine.Ctx.with_prune ctx masks in
  let blocks = Macro.partition ~target_gates:40 nets.(1) in
  let g = blocks.(1).Macro.b_gates.(0) in
  Netlist.set_size nets.(1) g (Netlist.size nets.(1) g *. 2.0);
  Macro.Table.reset_counters table;
  let refreshed = Engine.Ctx.refresh_block ctx ~stage:1 ~block:1 in
  Alcotest.(check int) "one block re-characterised" 1
    (Macro.Table.misses table);
  Alcotest.(check int) "other bands of the stage hit" (nb - 1)
    (Macro.Table.hits table);
  match Engine.Ctx.prune_masks refreshed with
  | None -> Alcotest.fail "masks dropped wholesale; expected per-stage drop"
  | Some ms ->
      Alcotest.(check (array bool))
        "untouched stage keeps its mask" masks.(0) ms.(0);
      Alcotest.(check bool) "refreshed stage mask reset to all-true" true
        (Array.for_all Fun.id ms.(1))

(* Minimal-block edge: a single-gate stage is one band of one gate.
   The counters still behave (one miss cold, one hit warm), and
   [refresh_block ~block:0] degenerates to a whole-stage refresh with
   no other band to hit. *)
let test_single_gate_stage_counters_and_refresh () =
  let net = Gen.inverter_chain ~name:"one" ~depth:1 () in
  let table = Macro.Table.create () in
  let build () =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~macro_table:table tech
      [| net |]
  in
  let ctx = build () in
  Alcotest.(check int) "single band" 1 (Engine.Ctx.n_blocks ctx 0);
  Alcotest.(check int) "cold build: one miss" 1 (Macro.Table.misses table);
  Alcotest.(check int) "cold build: no hits" 0 (Macro.Table.hits table);
  let (_ : Engine.Ctx.t) = build () in
  Alcotest.(check int) "warm build: one hit" 1 (Macro.Table.hits table);
  Alcotest.(check int) "warm build: no new miss" 1 (Macro.Table.misses table);
  let g = (Netlist.gate_ids net).(0) in
  Netlist.set_size net g (Netlist.size net g *. 1.5);
  Macro.Table.reset_counters table;
  let refreshed = Engine.Ctx.refresh_block ctx ~stage:0 ~block:0 in
  Alcotest.(check int) "refresh re-characterises the only block" 1
    (Macro.Table.misses table);
  Alcotest.(check int) "no other band to hit" 0 (Macro.Table.hits table);
  let scratch = Engine.Ctx.of_circuits ~mode:Engine.Hierarchical tech [| net |] in
  check_bits "refreshed mu == scratch mu"
    (G.mu (Engine.Ctx.delay_distribution refreshed))
    (G.mu (Engine.Ctx.delay_distribution scratch));
  check_bits "refreshed sigma == scratch sigma"
    (G.sigma (Engine.Ctx.delay_distribution refreshed))
    (G.sigma (Engine.Ctx.delay_distribution scratch))

(* ---- error bound ---------------------------------------------------- *)

let test_closed_forms_within_bound () =
  let net = Gen.random_logic ~name:"b" ~inputs:6 ~gates:150 ~depth:12 ~seed:8 in
  let flat = Engine.Ctx.of_circuits tech [| net |] in
  let hier =
    Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~block_gates:50 tech
      [| net |]
  in
  let g = Engine.Ctx.delay_distribution flat in
  let targets =
    [|
      G.mu g -. (2.0 *. G.sigma g); G.mu g; G.mu g +. (2.0 *. G.sigma g);
    |]
  in
  List.iter
    (fun method_ ->
      Array.iter
        (fun t_target ->
          let f = Engine.yield ~method_ flat ~t_target in
          let h = Engine.yield ~method_ hier ~t_target in
          Alcotest.(check bool)
            (Engine.method_name method_ ^ ": flat estimate carries no bound")
            true
            (f.Engine.hier_bound = None);
          match h.Engine.hier_bound with
          | None ->
              Alcotest.failf "%s: hierarchical estimate lost its bound"
                (Engine.method_name method_)
          | Some b ->
              let gap = Float.abs (f.Engine.value -. h.Engine.value) in
              if gap > b +. 1e-12 then
                Alcotest.failf "%s at T=%g: gap %.17g exceeds bound %.17g"
                  (Engine.method_name method_) t_target gap b)
        targets)
    [ Engine.Analytic_clark; Engine.Exact_independent; Engine.Quadrature ];
  let fm = Engine.delay_mean ~method_:Engine.Analytic_clark flat in
  let hm = Engine.delay_mean ~method_:Engine.Analytic_clark hier in
  match hm.Engine.hier_bound with
  | None -> Alcotest.fail "mean estimate lost its bound"
  | Some b ->
      let gap = Float.abs (fm.Engine.value -. hm.Engine.value) in
      if gap > b +. 1e-12 then
        Alcotest.failf "mean gap %.17g exceeds bound %.17g" gap b

(* ---- sweeps --------------------------------------------------------- *)

let test_hier_sweep_jobs_identity () =
  let grid = Grid.smoke () in
  let r1 = Sweep.run ~mode:Engine.Hierarchical ~jobs:1 grid in
  let r3 = Sweep.run ~mode:Engine.Hierarchical ~jobs:3 grid in
  Alcotest.(check string) "hier sweep byte-identical across jobs"
    (Sweep.to_jsonl r1) (Sweep.to_jsonl r3);
  (* circuit rows carry a bound and context-build counters; moments
     rows never touch the table *)
  Array.iter
    (fun row ->
      match row.Sweep.estimate.Engine.hier_bound with
      | Some _ ->
          Alcotest.(check bool) "circuit row records characterisation" true
            (row.Sweep.macro_misses > 0 || row.Sweep.macro_hits > 0)
      | None ->
          Alcotest.(check int) "moments row: no hits" 0 row.Sweep.macro_hits;
          Alcotest.(check int) "moments row: no misses" 0
            row.Sweep.macro_misses)
    r1.Sweep.rows

let suite =
  [
    quick "partition covers every gate once" test_partition_covers_once;
    quick "partition deterministic" test_partition_deterministic;
    quick "single macro == Block_ssta" test_single_macro_is_block_ssta;
    quick "hier gate-level MC == flat (and pruned)"
      test_hier_gate_mc_matches_flat;
    quick "memo misses == (block, process) pairs"
      test_memo_counts_block_process_pairs;
    quick "refresh_block re-characterises one block"
      test_refresh_block_recharacterises_one;
    quick "refresh_block rejects wrong block"
      test_refresh_block_rejects_wrong_block;
    quick "refresh drops exactly stale masks"
      test_refresh_drops_exactly_stale_masks;
    quick "swap-stage build is all cache hits" test_swap_stage_order_hits_cache;
    quick "refresh_block drops only the stale mask"
      test_refresh_block_drops_only_stale_mask;
    quick "single-gate stage: counters and refresh"
      test_single_gate_stage_counters_and_refresh;
    quick "closed forms within hier bound" test_closed_forms_within_bound;
    slow "hier sweep jobs byte-identity" test_hier_sweep_jobs_identity;
  ]
