open Helpers
module Clark = Spv_core.Clark
module G = Spv_stats.Gaussian
module C = Spv_stats.Correlation

let test_max2_dominant () =
  (* A variable far above the other: max ~ the dominant one. *)
  let hi = G.make ~mu:100.0 ~sigma:1.0 in
  let lo = G.make ~mu:0.0 ~sigma:1.0 in
  let m = Clark.max2 hi lo ~rho:0.0 in
  check_close ~rel:1e-9 "mean" 100.0 (G.mu m);
  check_close ~rel:1e-6 "sigma" 1.0 (G.sigma m)

let test_max2_symmetric_standard () =
  (* Known closed form: max of two iid N(0,1) has mean 1/sqrt(pi) and
     variance 1 - 1/pi. *)
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  let m = Clark.max2_moments g g ~rho:0.0 in
  check_close ~rel:1e-10 "mean" (1.0 /. sqrt Float.pi) m.Clark.mean;
  check_close ~rel:1e-10 "variance" (1.0 -. (1.0 /. Float.pi)) m.Clark.variance

let test_max2_correlated_known () =
  (* For correlation rho, E[max] = sqrt((1-rho)/pi). *)
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  List.iter
    (fun rho ->
      let m = Clark.max2_moments g g ~rho in
      check_close ~rel:1e-10
        (Printf.sprintf "mean at rho=%g" rho)
        (sqrt ((1.0 -. rho) /. Float.pi))
        m.Clark.mean)
    [ -0.5; 0.0; 0.3; 0.9 ]

let test_max2_degenerate_rho1 () =
  let g = G.make ~mu:5.0 ~sigma:2.0 in
  let m = Clark.max2_moments g g ~rho:1.0 in
  check_float "mean" 5.0 m.Clark.mean;
  check_float "variance" 4.0 m.Clark.variance;
  (* Different means, perfectly correlated equal sigmas: max is the
     larger-mean variable almost surely. *)
  let m2 =
    Clark.max2_moments (G.make ~mu:3.0 ~sigma:2.0) (G.make ~mu:7.0 ~sigma:2.0)
      ~rho:1.0
  in
  check_float "dominated mean" 7.0 m2.Clark.mean

let test_max2_zero_sigma () =
  (* max of a constant and a Gaussian. *)
  let const = G.make ~mu:1.0 ~sigma:0.0 in
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  let m = Clark.max2_moments g const ~rho:0.0 in
  (* E[max(X, 1)] for X~N(0,1): 1*Phi(1) + phi(1) + 0*... ; closed form:
     E = 1*Phi((1-0)/1)... using Clark with s2=0: a=1, alpha=-1. *)
  let phi = Spv_stats.Special.phi 1.0 in
  let cdf = Spv_stats.Special.big_phi 1.0 in
  check_close ~rel:1e-10 "mean" ((0.0 *. (1. -. cdf)) +. (1.0 *. cdf) +. phi)
    m.Clark.mean

let test_max2_against_mc () =
  let g1 = G.make ~mu:10.0 ~sigma:3.0 in
  let g2 = G.make ~mu:12.0 ~sigma:2.0 in
  let rho = 0.4 in
  let mvn =
    Spv_stats.Mvn.create ~mus:[| 10.0; 12.0 |] ~sigmas:[| 3.0; 2.0 |]
      ~corr:(C.uniform ~n:2 ~rho)
  in
  let rng = Spv_stats.Rng.create ~seed:120 in
  let xs = Array.init 200_000 (fun _ -> Spv_stats.Mvn.sample_max mvn rng) in
  let m = Clark.max2_moments g1 g2 ~rho in
  let mc_mean = Spv_stats.Descriptive.mean xs in
  let mc_std = Spv_stats.Descriptive.std xs in
  check_in_range "mean vs MC" ~lo:(mc_mean -. 0.02) ~hi:(mc_mean +. 0.02)
    m.Clark.mean;
  check_in_range "std vs MC" ~lo:(0.99 *. mc_std) ~hi:(1.01 *. mc_std)
    (sqrt m.Clark.variance)

let test_correlation_with_max_bounds () =
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  let m = Clark.max2_moments g g ~rho:0.2 in
  let r = Clark.correlation_with_max ~s1:1.0 ~s2:1.0 ~r1:0.5 ~r2:0.7 m in
  check_in_range "bounded" ~lo:(-1.0) ~hi:1.0 r;
  Alcotest.(check bool) "positive when both positive" true (r > 0.0)

let test_max_n_vs_exact_small () =
  let gs =
    [| G.make ~mu:100.0 ~sigma:5.0; G.make ~mu:104.0 ~sigma:4.0;
       G.make ~mu:98.0 ~sigma:6.0 |]
  in
  let approx = Clark.max_n_independent gs in
  let em, es = Clark.exact_max_moments_independent gs in
  check_in_range "mean error < 0.1%" ~lo:(0.999 *. em) ~hi:(1.001 *. em)
    (G.mu approx);
  check_in_range "std error < 5%" ~lo:(0.95 *. es) ~hi:(1.05 *. es)
    (G.sigma approx)

let test_max_n_perfectly_correlated () =
  (* rho = 1, equal sigma: max = largest-mean variable exactly. *)
  let gs = Array.init 5 (fun i -> G.make ~mu:(float_of_int (90 + i)) ~sigma:3.0) in
  let m = Clark.max_n gs ~corr:(C.perfectly_correlated ~n:5) in
  check_close ~rel:1e-9 "mean" 94.0 (G.mu m);
  check_close ~rel:1e-6 "sigma" 3.0 (G.sigma m)

let test_max_n_single () =
  let g = G.make ~mu:7.0 ~sigma:2.0 in
  let m = Clark.max_n [| g |] ~corr:(C.independent ~n:1) in
  check_float "identity" 7.0 (G.mu m)

let test_max_n_monotone_in_n () =
  (* Adding an iid stage increases the expected max. *)
  let g = G.make ~mu:100.0 ~sigma:5.0 in
  let mean_of n = G.mu (Clark.max_n_independent (Array.make n g)) in
  Alcotest.(check bool) "monotone" true
    (mean_of 2 < mean_of 4 && mean_of 4 < mean_of 8)

let test_exact_cdf_independent () =
  let gs = [| G.make ~mu:0.0 ~sigma:1.0; G.make ~mu:0.0 ~sigma:1.0 |] in
  check_close ~rel:1e-12 "product of Phis"
    (Spv_stats.Special.big_phi 1.0 ** 2.0)
    (Clark.exact_max_cdf_independent gs 1.0)

let test_order_matters_only_slightly () =
  let gs =
    Array.init 6 (fun i -> G.make ~mu:(100.0 +. (3.0 *. float_of_int i)) ~sigma:4.0)
  in
  let inc = Clark.max_n_independent ~order:Clark.Increasing_mean gs in
  let dec = Clark.max_n_independent ~order:Clark.Decreasing_mean gs in
  check_in_range "orders agree to 1%"
    ~lo:(0.99 *. G.mu inc) ~hi:(1.01 *. G.mu inc) (G.mu dec)

let test_errors () =
  check_raises_invalid "empty" (fun () ->
      ignore (Clark.max_n [||] ~corr:(C.independent ~n:1)));
  check_raises_invalid "bad rho" (fun () ->
      ignore
        (Clark.max2 (G.make ~mu:0.0 ~sigma:1.0) (G.make ~mu:0.0 ~sigma:1.0)
           ~rho:1.5))

let prop_max_n_above_jensen =
  prop ~count:100 "E[max] >= max of means"
    QCheck2.Gen.(
      list_size (int_range 2 8)
        (pair (float_range 50.0 150.0) (float_range 0.1 10.0)))
    (fun specs ->
      let gs =
        Array.of_list (List.map (fun (mu, sigma) -> G.make ~mu ~sigma) specs)
      in
      let m = Clark.max_n_independent gs in
      let jensen =
        Array.fold_left (fun acc g -> Float.max acc (G.mu g)) neg_infinity gs
      in
      G.mu m >= jensen -. 1e-6)

let prop_max2_commutative =
  prop ~count:100 "max2 commutative"
    QCheck2.Gen.(
      tup4 (float_range 0.0 10.0) (float_range 0.1 5.0)
        (float_range 0.0 10.0) (float_range 0.1 5.0))
    (fun (m1, s1, m2, s2) ->
      let a = G.make ~mu:m1 ~sigma:s1 and b = G.make ~mu:m2 ~sigma:s2 in
      let x = Clark.max2 a b ~rho:0.3 and y = Clark.max2 b a ~rho:0.3 in
      abs_float (G.mu x -. G.mu y) < 1e-9
      && abs_float (G.sigma x -. G.sigma y) < 1e-9)

let test_max2_rho_extremes () =
  (* The closed form E[max] = sqrt((1-rho)/pi) for iid N(0,1) holds at
     the boundary correlations too. *)
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  let anti = Clark.max2_moments g g ~rho:(-1.0) in
  check_close ~rel:1e-10 "mean at rho=-1"
    (sqrt (2.0 /. Float.pi))
    anti.Clark.mean;
  (* rho = 1 with equal sigmas hits the degenerate a < threshold branch:
     the two variables are the same variable. *)
  let full = Clark.max2_moments g g ~rho:1.0 in
  check_float "mean at rho=1" 0.0 full.Clark.mean;
  check_float "variance at rho=1" 1.0 full.Clark.variance

let test_max2_both_sigmas_zero () =
  (* Two constants: the max is the larger one, exactly, with zero
     variance — and nothing divides by the zero spread. *)
  let m =
    Clark.max2_moments (G.make ~mu:3.0 ~sigma:0.0) (G.make ~mu:7.0 ~sigma:0.0)
      ~rho:0.0
  in
  check_float "mean" 7.0 m.Clark.mean;
  check_float "variance" 0.0 m.Clark.variance

let test_max2_equal_means_degenerate () =
  (* Equal means AND a below the degenerate threshold: either branch is
     the same answer; the correlation with such a zero-spread max is
     defined as 0 rather than 0/0. *)
  let g = G.make ~mu:5.0 ~sigma:0.0 in
  let m = Clark.max2_moments g g ~rho:0.0 in
  check_float "mean" 5.0 m.Clark.mean;
  check_float "variance" 0.0 m.Clark.variance;
  check_float "corr with degenerate max" 0.0
    (Clark.correlation_with_max ~s1:0.0 ~s2:0.0 ~r1:0.5 ~r2:0.5 m)

let prop_correlation_with_max_bounded =
  prop ~count:300 "correlation_with_max finite and in [-1,1]"
    QCheck2.Gen.(
      tup4
        (pair (float_range (-50.0) 50.0) (float_range 0.0 10.0))
        (pair (float_range (-50.0) 50.0) (float_range 0.0 10.0))
        (float_range (-0.95) 0.95)
        (pair (float_range (-0.95) 0.95) (float_range (-0.95) 0.95)))
    (fun ((m1, s1), (m2, s2), rho, (r1, r2)) ->
      let m =
        Clark.max2_moments (G.make ~mu:m1 ~sigma:s1) (G.make ~mu:m2 ~sigma:s2)
          ~rho
      in
      let r = Clark.correlation_with_max ~s1 ~s2 ~r1 ~r2 m in
      Float.is_finite r && r >= -1.0 && r <= 1.0)

let suite =
  [
    quick "max2 dominant" test_max2_dominant;
    quick "max2 iid standard" test_max2_symmetric_standard;
    quick "max2 correlated closed form" test_max2_correlated_known;
    quick "max2 degenerate rho=1" test_max2_degenerate_rho1;
    quick "max2 zero sigma" test_max2_zero_sigma;
    slow "max2 vs MC" test_max2_against_mc;
    quick "correlation with max" test_correlation_with_max_bounds;
    quick "max_n vs exact" test_max_n_vs_exact_small;
    quick "max_n rho=1" test_max_n_perfectly_correlated;
    quick "max_n single" test_max_n_single;
    quick "max_n monotone" test_max_n_monotone_in_n;
    quick "exact cdf" test_exact_cdf_independent;
    quick "fold order insensitivity" test_order_matters_only_slightly;
    quick "errors" test_errors;
    quick "max2 rho extremes" test_max2_rho_extremes;
    quick "max2 both sigmas zero" test_max2_both_sigmas_zero;
    quick "max2 equal means degenerate" test_max2_equal_means_degenerate;
    prop_max_n_above_jensen;
    prop_max2_commutative;
    prop_correlation_with_max_bounded;
  ]
