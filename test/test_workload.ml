(* The sweep runner's contracts under test:

   1. Determinism: a grid's JSONL output is a pure function of the
      seed — the worker-domain count never changes a byte.

   2. Caching honesty: every row is bit-identical to the corresponding
      single-scenario engine call with the same (seed, shards, n);
      sharing a context (or, for Mc, a sampling pass) across scenarios
      must never change an answer.

   3. Grid files: parse errors carry the 1-based offending line, and
      expansion counts follow sources x processes x methods x targets
      with moments sources pinned to the nominal process. *)

module Grid = Spv_workload.Grid
module Sweep = Spv_workload.Sweep
module Engine = Spv_engine.Engine
module Errors = Spv_robust.Errors
module Checked = Spv_robust.Checked
module G = Spv_stats.Gaussian

let tech = Spv_process.Tech.bptm70
let bits f = Int64.bits_of_float f
let check_bits name a b = Alcotest.(check int64) name (bits a) (bits b)

let parse s =
  match Grid.of_string s with
  | Ok g -> g
  | Error e -> Alcotest.failf "unexpected parse error: %s" (Grid.parse_error_to_string e)

let expect_parse_error s ~line =
  match Grid.of_string s with
  | Ok _ -> Alcotest.failf "grid %S parsed but should not have" s
  | Error e ->
      Alcotest.(check (option int)) (Printf.sprintf "line of error in %S" s)
        (Some line) e.Grid.line

(* ---- grid parsing ---------------------------------------------------- *)

let test_grid_parse_counts () =
  let g =
    parse
      "# demo\n\
       stages 100,6 100,6 95,5\n\
       rho 0.3\n\
       stages 100,6 100,6\n\
       circuit chain10\n\
       targets 100,110\n\
       targets 120:140:3\n\
       method clark,mc\n\
       inter_vth_mv 60\n\
       samples 5000\n\
       shards 4\n"
  in
  Alcotest.(check int) "sources" 3 (List.length g.Grid.sources);
  Alcotest.(check int) "targets" 5 (Array.length g.Grid.targets);
  Alcotest.(check int) "methods" 2 (List.length g.Grid.methods);
  Alcotest.(check int) "processes" 2 (List.length g.Grid.processes);
  Alcotest.(check int) "n" 5000 g.Grid.n;
  Alcotest.(check int) "shards" 4 g.Grid.shards;
  (* targets: the lo:hi:count form is endpoint-inclusive *)
  Alcotest.(check (float 0.0)) "target hi" 140.0 g.Grid.targets.(4);
  (* moments sources expand under the nominal process only:
     2 moments x 1 x 2 methods x 5 targets + 1 circuit x 2 x 2 x 5 *)
  Alcotest.(check int) "n_scenarios" 40 (Grid.n_scenarios g);
  (* `rho` applies to `stages` lines after it, not before *)
  (match g.Grid.sources with
  | Grid.Moments { rho; _ } :: Grid.Moments { rho = rho2; _ } :: _ ->
      Alcotest.(check (float 0.0)) "rho before directive" 0.0 rho;
      Alcotest.(check (float 0.0)) "rho after directive" 0.3 rho2
  | _ -> Alcotest.fail "expected two moments sources first")

let test_grid_parse_errors_carry_lines () =
  expect_parse_error "stages 100 6\n" ~line:1;
  expect_parse_error "stages 100,6\nbogus 1\n" ~line:2;
  expect_parse_error "stages 100,6\ntargets 100:110:0\n" ~line:2;
  expect_parse_error "stages 100,6\ntargets 100\nmethod warlock\n" ~line:3;
  expect_parse_error "circuit no_such_circuit\n" ~line:1;
  expect_parse_error "stages 100,6\ntargets 100\nsamples -4\n" ~line:3;
  (* structural validation failures have no single line *)
  match Grid.of_string "stages 100,6\n" with
  | Ok _ -> Alcotest.fail "grid without targets parsed"
  | Error e -> Alcotest.(check (option int)) "no line" None e.Grid.line

let test_smoke_grid_shape () =
  let g = Grid.smoke () in
  (match Grid.validate g with
  | Ok () -> ()
  | Error m -> Alcotest.failf "smoke grid invalid: %s" m);
  Alcotest.(check int) "smoke scenarios" 120 (Grid.n_scenarios g);
  Alcotest.(check bool) "smoke is big enough for the acceptance gate" true
    (Grid.n_scenarios g >= 100)

(* ---- determinism ----------------------------------------------------- *)

let test_jsonl_bit_identical_across_jobs () =
  let g = { (Grid.smoke ()) with Grid.n = 2048 } in
  let run jobs = Sweep.to_jsonl (Sweep.run ~jobs ~seed:11 g) in
  let j1 = run 1 in
  Alcotest.(check string) "jobs 1 = jobs 2" j1 (run 2);
  Alcotest.(check string) "jobs 1 = jobs 4" j1 (run 4);
  Alcotest.(check int) "row count" (Grid.n_scenarios g)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' j1)))

(* Every row must match the single-scenario engine call a user would
   have made instead — context and Mc-pass sharing may not shift a
   single bit, for any method in the taxonomy. *)
let test_rows_match_single_scenario_calls () =
  let g =
    {
      Grid.sources =
        [
          Grid.Moments
            {
              label = "m";
              stages = [| (100.0, 6.0); (98.0, 5.0); (103.0, 7.0) |];
              rho = 0.3;
            };
          Grid.Circuit { label = "chain10"; net = Spv_circuit.Generators.inverter_chain ~depth:10 () };
        ];
      processes = [ Grid.nominal; { Grid.p_label = "vth40mv"; inter_vth_mv = Some 40.0 } ];
      targets = [| 108.0; 114.0; 122.0 |];
      methods =
        [
          Engine.Analytic_clark; Engine.Exact_independent; Engine.Quadrature;
          Engine.Mc; Engine.Adaptive_mc; Engine.Importance;
        ];
      n = 2000;
      shards = 8;
    }
  in
  let r = Sweep.run ~jobs:2 ~seed:5 ~tech g in
  Alcotest.(check int) "scenario count" 54 (Array.length r.Sweep.rows);
  Alcotest.(check int) "contexts" 3 r.Sweep.n_contexts;
  Array.iter
    (fun (row : Sweep.row) ->
      let s = row.Sweep.scenario in
      let source =
        List.find (fun src -> Grid.source_label src = s.Sweep.source) g.Grid.sources
      in
      let process =
        List.find (fun p -> p.Grid.p_label = s.Sweep.process) g.Grid.processes
      in
      let ctx = Sweep.ctx_for ~tech source process in
      let e =
        Engine.yield ~method_:s.Sweep.method_ ~jobs:1 ~shards:g.Grid.shards
          ~seed:5 ~n:g.Grid.n ctx ~t_target:s.Sweep.t_target
      in
      let name =
        Printf.sprintf "[%d] %s/%s %s T=%g" s.Sweep.index s.Sweep.source
          s.Sweep.process (Engine.method_name s.Sweep.method_) s.Sweep.t_target
      in
      check_bits (name ^ ": value") e.Engine.value
        row.Sweep.estimate.Engine.value;
      check_bits (name ^ ": std_error") e.Engine.std_error
        row.Sweep.estimate.Engine.std_error;
      Alcotest.(check int) (name ^ ": n_samples") e.Engine.n_samples
        row.Sweep.estimate.Engine.n_samples)
    r.Sweep.rows

let test_context_count_is_pair_count () =
  let chain d = Spv_circuit.Generators.inverter_chain ~depth:d () in
  let g =
    {
      Grid.sources =
        [
          Grid.Moments { label = "m"; stages = [| (100.0, 6.0) |]; rho = 0.0 };
          Grid.Circuit { label = "c4"; net = chain 4 };
          Grid.Circuit { label = "c6"; net = chain 6 };
        ];
      processes = [ Grid.nominal; { Grid.p_label = "vth60mv"; inter_vth_mv = Some 60.0 } ];
      targets = [| 100.0; 120.0 |];
      methods = [ Engine.Analytic_clark ];
      n = 100;
      shards = 2;
    }
  in
  let r = Sweep.run g in
  (* 1 moments pair (nominal only) + 2 circuits x 2 processes *)
  Alcotest.(check int) "contexts" 5 r.Sweep.n_contexts;
  Alcotest.(check int) "rows" 10 (Array.length r.Sweep.rows)

(* ---- engine multi-target sharing ------------------------------------ *)

let test_yield_targets_bit_identical_to_single () =
  let stages =
    Array.init 5 (fun i ->
        Spv_core.Stage.of_moments
          ~mu:(100.0 +. float_of_int i)
          ~sigma:(4.0 +. (0.3 *. float_of_int i))
          ())
  in
  let ctx =
    Engine.Ctx.of_pipeline
      (Spv_core.Pipeline.make stages
         ~corr:(Spv_stats.Correlation.uniform ~n:5 ~rho:0.2))
  in
  let t_targets = [| 104.0; 110.0; 118.0; 130.0 |] in
  let multi =
    Engine.yield_targets ~method_:Engine.Mc ~jobs:3 ~seed:17 ~n:4096 ctx
      ~t_targets
  in
  Array.iteri
    (fun i t ->
      let single =
        Engine.yield ~method_:Engine.Mc ~jobs:1 ~seed:17 ~n:4096 ctx
          ~t_target:t
      in
      check_bits
        (Printf.sprintf "target %g: shared pass = single pass" t)
        single.Engine.value multi.(i).Engine.value)
    t_targets

(* ---- deep-tail loss -------------------------------------------------- *)

let test_deep_tail_loss_rows_nonzero () =
  let g =
    {
      Grid.sources =
        [ Grid.Moments { label = "m"; stages = [| (100.0, 5.0) |]; rho = 0.0 } ];
      processes = [ Grid.nominal ];
      (* 10 sigma: the naive 1 - yield complement is exactly 0.0 here *)
      targets = [| 150.0 |];
      methods = [ Engine.Analytic_clark; Engine.Exact_independent ];
      n = 100;
      shards = 2;
    }
  in
  let r = Sweep.run g in
  Array.iter
    (fun (row : Sweep.row) ->
      let name = Engine.method_name row.Sweep.scenario.Sweep.method_ in
      Alcotest.(check bool) (name ^ ": naive complement underflows") true
        (1.0 -. row.Sweep.estimate.Engine.value = 0.0);
      Alcotest.(check bool) (name ^ ": loss stays positive") true
        (row.Sweep.loss > 0.0 && row.Sweep.loss < 1e-20))
    r.Sweep.rows

(* ---- stage-count memoisation ---------------------------------------- *)

let test_stage_count_sweep_matches_variability () =
  let stage = G.make ~mu:100.0 ~sigma:6.0 in
  let stage_counts = Array.init 10 (fun i -> 4 * (i + 1)) in
  List.iter
    (fun rho ->
      let memoised = Sweep.stage_count_sweep ~stage ~rho ~stage_counts in
      let per_count =
        Spv_core.Variability.pipeline_sigma_mu_vs_stages ~stage ~rho
          ~stage_counts
      in
      Array.iteri
        (fun i v ->
          check_bits
            (Printf.sprintf "rho=%g, %d stages" rho stage_counts.(i))
            per_count.(i) v)
        memoised)
    [ 0.0; 0.2; 0.5 ]

(* ---- JSON float hygiene ---------------------------------------------- *)

let test_json_float_nonfinite_emits_null () =
  Alcotest.(check string) "nan" "null" (Sweep.json_float Float.nan);
  Alcotest.(check string) "inf" "null" (Sweep.json_float Float.infinity);
  Alcotest.(check string) "-inf" "null" (Sweep.json_float Float.neg_infinity);
  (* finite values still round-trip bit-exactly *)
  List.iter
    (fun x ->
      check_bits
        (Printf.sprintf "%h round-trips" x)
        x
        (float_of_string (Sweep.json_float x)))
    [ 0.3; 1e-300; -4.25; 8.4075768788727465e-193; 0.0 ]

let estimate_with value =
  {
    Engine.value;
    std_error = 0.01;
    n_samples = 128;
    method_ = Engine.Importance;
    stop = Engine.Fixed_n;
    hier_bound = None;
    ess = Some 17.5;
    proposal = Some Engine.Prop_legacy;
  }

(* Regression: a NaN estimate used to print bare [nan] via %.17g —
   invalid JSON that corrupted the whole line downstream. *)
let test_row_with_nan_estimate_stays_valid_json () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  let row =
    {
      Sweep.scenario =
        {
          Sweep.index = 0;
          source = "m";
          process = "nominal";
          method_ = Engine.Importance;
          t_target = 120.0;
        };
      estimate = { (estimate_with Float.nan) with Engine.ess = Some Float.nan };
      loss = Float.infinity;
      macro_hits = 0;
      macro_misses = 0;
    }
  in
  let json = Sweep.row_to_json row in
  Alcotest.(check bool) "no bare nan token" false (contains json "nan");
  Alcotest.(check bool) "no bare inf token" false (contains json "inf");
  Alcotest.(check bool) "yield nulled" true (contains json "\"yield\":null");
  Alcotest.(check bool) "loss nulled" true (contains json "\"loss\":null");
  Alcotest.(check bool) "ess nulled" true (contains json "\"ess\":null");
  Alcotest.(check bool) "finite fields untouched" true
    (contains json "\"t_target\":120")

(* ---- importance loss clamping ---------------------------------------- *)

(* Regression: the Importance branch used to clamp only the derived
   yield and report the raw estimate as loss, so a self-normalised
   weight excursion could ship loss > 1 next to yield = 0. *)
let test_importance_row_clamps_loss_and_yield_together () =
  let check_pair name raw ~loss ~yield =
    let e, l = Sweep.importance_row (estimate_with raw) in
    check_bits (name ^ ": loss") loss l;
    check_bits (name ^ ": yield") yield e.Engine.value;
    Alcotest.(check bool) (name ^ ": consistent") true
      (Float.abs (e.Engine.value +. l -. 1.0) < 1e-15)
  in
  check_pair "excursion above 1" 1.25 ~loss:1.0 ~yield:0.0;
  check_pair "excursion below 0" (-0.25) ~loss:0.0 ~yield:1.0;
  check_pair "in range untouched" 0.3 ~loss:0.3 ~yield:0.7;
  check_pair "boundary" 1.0 ~loss:1.0 ~yield:0.0

(* ---- stage_count_sweep positional contract --------------------------- *)

let test_stage_count_sweep_duplicates_and_order () =
  let stage = G.make ~mu:100.0 ~sigma:6.0 in
  let unsorted = [| 8; 4; 8; 2 |] in
  let r = Sweep.stage_count_sweep ~stage ~rho:0.3 ~stage_counts:unsorted in
  Alcotest.(check int) "positional length" 4 (Array.length r);
  check_bits "duplicate counts answer identically" r.(0) r.(2);
  (* each entry equals the same count queried alone *)
  Array.iteri
    (fun i n ->
      let alone =
        Sweep.stage_count_sweep ~stage ~rho:0.3 ~stage_counts:[| n |]
      in
      check_bits (Printf.sprintf "slot %d (n=%d)" i n) alone.(0) r.(i))
    unsorted;
  (* the documented rejections *)
  Alcotest.check_raises "empty"
    (Invalid_argument "Sweep.stage_count_sweep: no stage counts") (fun () ->
      ignore (Sweep.stage_count_sweep ~stage ~rho:0.3 ~stage_counts:[||]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Sweep.stage_count_sweep: stage count <= 0") (fun () ->
      ignore (Sweep.stage_count_sweep ~stage ~rho:0.3 ~stage_counts:[| 3; 0 |]))

(* ---- checked wrappers ------------------------------------------------ *)

let test_checked_sweep_wrappers () =
  (match Checked.sweep_grid_of_string ~path:"g.grid" "stages 100,6\nbroken\n" with
  | Ok _ -> Alcotest.fail "broken grid accepted"
  | Error (Errors.Parse_error { path; line; _ }) ->
      Alcotest.(check (option string)) "path" (Some "g.grid") path;
      Alcotest.(check (option int)) "line" (Some 2) line
  | Error e -> Alcotest.failf "wrong error class: %s" (Errors.to_string e));
  match
    Checked.sweep_grid_of_string "stages 100,6 95,5\ntargets 100:120:3\n"
  with
  | Error e -> Alcotest.failf "valid grid rejected: %s" (Errors.to_string e)
  | Ok g -> (
      match Checked.sweep_run ~jobs:1 ~seed:3 g with
      | Error e -> Alcotest.failf "sweep_run failed: %s" (Errors.to_string e)
      | Ok r ->
          Alcotest.(check int) "rows" 3 (Array.length r.Sweep.rows);
          Array.iter
            (fun (row : Sweep.row) ->
              Alcotest.(check bool) "yield in [0,1]" true
                (row.Sweep.estimate.Engine.value >= 0.0
                && row.Sweep.estimate.Engine.value <= 1.0))
            r.Sweep.rows)

let suite =
  [
    Alcotest.test_case "grid parse: directive accumulation and counts" `Quick
      test_grid_parse_counts;
    Alcotest.test_case "grid parse: errors carry 1-based lines" `Quick
      test_grid_parse_errors_carry_lines;
    Alcotest.test_case "smoke grid: valid, 120 scenarios" `Quick
      test_smoke_grid_shape;
    Alcotest.test_case "sweep: JSONL bit-identical across jobs 1/2/4" `Quick
      test_jsonl_bit_identical_across_jobs;
    Alcotest.test_case "sweep: rows match single-scenario engine calls" `Quick
      test_rows_match_single_scenario_calls;
    Alcotest.test_case "sweep: one context per (source, process) pair" `Quick
      test_context_count_is_pair_count;
    Alcotest.test_case "engine: yield_targets = per-target runs, bit-exact"
      `Quick test_yield_targets_bit_identical_to_single;
    Alcotest.test_case "sweep: deep-tail loss rows stay nonzero" `Quick
      test_deep_tail_loss_rows_nonzero;
    Alcotest.test_case "stage_count_sweep = per-count Clark, bit-exact" `Quick
      test_stage_count_sweep_matches_variability;
    Alcotest.test_case "json_float: non-finite floats emit null" `Quick
      test_json_float_nonfinite_emits_null;
    Alcotest.test_case "row_to_json: NaN/inf estimates stay valid JSON" `Quick
      test_row_with_nan_estimate_stays_valid_json;
    Alcotest.test_case "importance_row: loss and yield clamped together"
      `Quick test_importance_row_clamps_loss_and_yield_together;
    Alcotest.test_case "stage_count_sweep: positional, duplicates allowed"
      `Quick test_stage_count_sweep_duplicates_and_order;
    Alcotest.test_case "checked wrappers: typed errors and validated rows"
      `Quick test_checked_sweep_wrappers;
  ]
