open Helpers
module I = Spv_analysis.Interval
module A = Spv_analysis.Affine
module As = Spv_analysis.Affine_sta
module B = Spv_analysis.Bounds
module Cf = Spv_analysis.Certify
module Rp = Spv_analysis.Report
module Ck = Spv_robust.Checked
module Errors = Spv_robust.Errors
module Engine = Spv_engine.Engine
module Gen = Spv_circuit.Generators
module Ds = Spv_core.Design_space
module Rng = Spv_stats.Rng

let tech = Spv_process.Tech.bptm70

let gate_ctx nets =
  Engine.Ctx.of_circuits ~ff:(Spv_process.Flipflop.default tech) tech nets

let seed_gate_ctx () =
  gate_ctx (Gen.inverter_chain_pipeline ~stages:3 ~depth:8 ())

let moment_ctx () =
  let stages =
    Array.map2
      (fun mu sigma -> Spv_core.Stage.of_moments ~mu ~sigma ())
      [| 100.0; 95.0; 90.0; 105.0 |] [| 5.0; 4.0; 3.0; 6.0 |]
  in
  Engine.Ctx.of_pipeline
    (Spv_core.Pipeline.make stages
       ~corr:(Spv_stats.Correlation.uniform ~n:4 ~rho:0.3))

(* ---- interval extensions --------------------------------------------- *)

let test_interval_extensions () =
  let a = I.make ~lo:(-1.0) ~hi:3.0 in
  check_float "neg lo" (-3.0) (I.lo (I.neg a));
  check_float "neg hi" 1.0 (I.hi (I.neg a));
  check_float "sym lo" (-2.5) (I.lo (I.sym 2.5));
  check_float "sym hi" 2.5 (I.hi (I.sym 2.5));
  check_float "sym takes |r|" 2.5 (I.hi (I.sym (-2.5)));
  let b = I.make ~lo:(-2.0) ~hi:5.0 in
  (* mul must hull all four products: {-1,3} x {-2,5}. *)
  check_float "mul lo" (-6.0) (I.lo (I.mul a b));
  check_float "mul hi" 15.0 (I.hi (I.mul a b));
  check_float "mul by point scalar" (-2.0) (I.lo (I.mul a (I.point 2.0)));
  check_float "mul by negative point" (-15.0)
    (I.lo (I.mul b (I.point (-3.0))))

(* ---- affine ops: exactness on the linear fragment --------------------- *)

let sym_a = A.Factor 0
let sym_b = A.Factor 1

let form ?(events = 0) ?(rem = I.point 0.0) center terms =
  A.make ~events ~center ~terms ~rem ()

let test_affine_linear_ops () =
  let x = form 2.0 [ (sym_a, 1.0); (sym_b, 0.5) ] in
  let y = form 1.0 [ (sym_a, -1.0) ] in
  let s = A.add x y in
  check_float "add center" 3.0 (A.center s);
  check_float "add merges shared symbol" 0.0 (A.coeff s sym_a);
  check_float "add keeps other symbol" 0.5 (A.coeff s sym_b);
  Alcotest.(check int) "zero coeffs dropped" 1 (A.n_terms s);
  let d = A.sub x y in
  check_float "sub center" 1.0 (A.center d);
  check_float "sub coeff" 2.0 (A.coeff d sym_a);
  let sc = A.scale x (-2.0) in
  check_float "scale center" (-4.0) (A.center sc);
  check_float "scale coeff" (-1.0) (A.coeff sc sym_b);
  check_float "sigma is RSS" (sqrt 1.25) (A.sigma x);
  check_float "linear radius is L1" 1.5 (A.linear_radius x);
  check_float "add_const" 7.0 (A.center (A.add_const x 5.0));
  (* events propagate through every composition. *)
  let ex = form ~events:2 0.0 [] and ey = form ~events:3 0.0 [] in
  Alcotest.(check int) "events add" 5 (A.events (A.add ex ey));
  Alcotest.(check int) "events sub" 5 (A.events (A.sub ex ey));
  check_raises_invalid "negative events" (fun () ->
      ignore (form ~events:(-1) 0.0 []));
  check_raises_invalid "NaN center" (fun () -> ignore (form Float.nan []))

let test_affine_escape_budget () =
  let k = 6.0 in
  let x = form ~events:2 0.0 [ (sym_a, 1.0); (sym_b, 1.0) ] in
  let expected =
    float_of_int (2 + 2 + 1) *. 2.0 *. Spv_stats.Special.big_phi (-.k)
  in
  check_close "escape = (n + events + 1) 2Phi(-k)" expected
    (A.escape_probability ~k x);
  (* An undecided max2 charges exactly one new event. *)
  let y = form 0.1 [ (sym_a, -1.0) ] in
  let m = A.max2 ~k (form 0.0 [ (sym_a, 1.0) ]) y in
  Alcotest.(check int) "max2 adds one event" 1 (A.events m);
  (* A range-decided max2 returns the winner unchanged: no event. *)
  let lo = form 0.0 [ (sym_a, 1.0) ] and hi = form 100.0 [ (sym_a, 1.0) ] in
  Alcotest.(check int) "decided max2 adds no event" 0
    (A.events (A.max2 ~k lo hi));
  check_float "decided max2 is the winner" 100.0
    (A.center (A.max2 ~k lo hi))

(* max2 under Gaussian worlds: the result's eval_interval must contain
   the true max of exact operands on (essentially) every draw — the
   chord event fails with probability ~2Phi(-6) per max, invisible at
   this sample size and seed. *)
let test_affine_max2_soundness_mc () =
  let k = 6.0 in
  let rng = Rng.create ~seed:20260807 in
  let syms = [| A.Factor 0; A.Factor 1; A.Factor 2; A.Sys 0 |] in
  for _trial = 1 to 200 do
    let rand_form () =
      let terms =
        Array.to_list
          (Array.map (fun s -> (s, Rng.uniform rng ~lo:(-2.0) ~hi:2.0)) syms)
      in
      form (Rng.uniform rng ~lo:(-5.0) ~hi:5.0) terms
    in
    let x = rand_form () and y = rand_form () and z = rand_form () in
    let m = A.max_many ~k [| x; y; z |] in
    for _draw = 1 to 50 do
      let eps = Array.map (fun _ -> Rng.gaussian rng) syms in
      let at s =
        match s with
        | A.Factor j -> eps.(j)
        | A.Sys 0 -> eps.(3)
        | _ -> 0.0
      in
      let value_of f = I.lo (A.eval_interval f at) in
      let truth = Float.max (value_of x) (Float.max (value_of y) (value_of z)) in
      let enc = A.eval_interval m at in
      if not (I.contains ~slack:1e-9 enc truth) then
        Alcotest.failf "max escaped: %g outside [%g, %g]" truth (I.lo enc)
          (I.hi enc)
    done
  done

(* Dust absorption: tiny coefficients move into the remainder (box
   transfer), the escape budget keeps counting them, and a
   near-cancelled tie lands on the step-function branch of cdf_bounds
   instead of Phi(0) = 1/2. *)
let test_affine_absorb_dust () =
  let k = 6.0 in
  let x = form 1.0 [ (sym_a, 2.0); (sym_b, 1e-14) ] in
  let d = A.absorb_dust ~k ~eps:1e-9 x in
  Alcotest.(check int) "dust term dropped" 1 (A.n_terms d);
  check_float "real coefficient kept" 2.0 (A.coeff d sym_a);
  check_float ~eps:1e-20 "remainder widened by k |coeff|" (6e-14)
    (I.hi (A.rem d));
  Alcotest.(check int) "absorbed term charged as an event" 1 (A.events d);
  (* The escape budget is unchanged: one fewer term, one more event. *)
  check_float "escape budget preserved" (A.escape_probability ~k x)
    (A.escape_probability ~k d);
  let clean = A.absorb_dust ~k ~eps:1e-9 (form 1.0 [ (sym_a, 2.0) ]) in
  Alcotest.(check int) "no dust: unchanged" 0 (A.events clean);
  (* An association-order tie: (a + b) - (a + b) computed through
     different groupings leaves dust, and the dust-absorbed difference
     must read as a sure tie, not a coin flip. *)
  let tie = A.sub (form 0.0 [ (sym_a, 0.1 +. 0.2) ]) (form 0.0 [ (sym_a, 0.3) ]) in
  Alcotest.(check bool) "dust survives exact subtraction" true
    (A.n_terms tie > 0);
  let b = A.cdf_bounds ~k (A.absorb_dust ~k ~eps:1e-9 tie) 0.0 in
  check_in_range "tie reads as a step, not 1/2" ~lo:0.99 ~hi:1.0 (I.hi b);
  check_raises_invalid "negative eps" (fun () ->
      ignore (A.absorb_dust ~k ~eps:(-1.0) x));
  check_raises_invalid "invalid k" (fun () ->
      ignore (A.absorb_dust ~k:0.0 ~eps:1e-9 x))

(* Remainder separation: a deep max chain over forms with remainders
   must not accumulate the sum of all remainders. *)
let test_affine_max2_remainder_separation () =
  let k = 6.0 in
  let rem = I.make ~lo:(-1.0) ~hi:1.0 in
  let chain =
    Array.init 32 (fun i ->
        form ~rem (float_of_int (i mod 3)) [ (A.Factor i, 1.0) ])
  in
  let m = A.max_many ~k chain in
  (* Summed remainders would reach width 64; the hull + per-max
     Chebyshev stays bounded by a small multiple of one operand's. *)
  if I.width (A.rem m) > 20.0 then
    Alcotest.failf "remainder piled up: width %g" (I.width (A.rem m))

(* ---- 10k-sample containment (model and gate level) -------------------- *)

let test_model_containment_10k () =
  let ctx = moment_ctx () in
  let a = As.of_ctx ~k:6.0 ctx in
  let samples = Engine.sample_delays ctx ~n:10_000 in
  Alcotest.(check int) "model MC samples inside delay enclosure" 0
    (I.mem_all a.As.delay samples)

let test_gate_containment_10k () =
  let ctx = seed_gate_ctx () in
  let a = As.of_ctx ~k:6.0 ctx in
  let pipe = Engine.gate_level_delays ~exact:false ctx ~n:10_000 in
  Alcotest.(check int) "gate-level MC pipeline delays inside enclosure" 0
    (I.mem_all a.As.delay pipe);
  let per_stage = Engine.gate_level_stage_samples ~exact:false ctx ~n:10_000 in
  Array.iteri
    (fun i samples ->
      Alcotest.(check int)
        (Printf.sprintf "stage %d samples inside enclosure" i)
        0
        (I.mem_all a.As.stages.(i).As.enclosure samples))
    per_stage

(* ---- nesting: affine never wider than the interval domain ------------- *)

let test_nesting_random_netlists () =
  List.iter
    (fun seed ->
      let nets =
        [|
          Gen.random_logic ~name:"r0" ~inputs:4 ~gates:30 ~depth:6 ~seed;
          Gen.random_logic ~name:"r1" ~inputs:3 ~gates:20 ~depth:5
            ~seed:(seed + 17);
        |]
      in
      let ctx = gate_ctx nets in
      let a = As.of_ctx ~k:6.0 ctx in
      let inside tight wide =
        I.lo tight >= I.lo wide -. 1e-9 && I.hi tight <= I.hi wide +. 1e-9
      in
      Array.iteri
        (fun i (s : As.stage) ->
          let total = a.As.bounds.B.stages.(i).B.total in
          if not (inside s.As.enclosure total) then
            Alcotest.failf "seed %d stage %d enclosure escapes interval" seed i;
          check_in_range "stage ratio" ~lo:0.0 ~hi:1.0 s.As.width_ratio)
        a.As.stages;
      if not (inside a.As.delay a.As.bounds.B.delay) then
        Alcotest.failf "seed %d pipeline enclosure escapes interval" seed;
      check_in_range "pipeline ratio" ~lo:0.0 ~hi:1.0 a.As.delay_ratio)
    [ 1; 2; 3 ]

let test_nesting_and_tightness_iscas () =
  let ctx = gate_ctx [| Gen.c432 () |] in
  let a = As.of_ctx ~k:6.0 ctx in
  check_in_range "c432 strictly tighter" ~lo:0.0 ~hi:0.999 a.As.delay_ratio;
  check_in_range "c432 escape tiny" ~lo:0.0 ~hi:1e-3 a.As.escape;
  let samples = Engine.gate_level_delays ~exact:false ctx ~n:10_000 in
  Alcotest.(check int) "c432 MC containment" 0 (I.mem_all a.As.delay samples)

(* ---- yield envelope and estimate checks ------------------------------- *)

let test_yield_envelope_and_checks () =
  let ctx = moment_ctx () in
  let a = As.of_ctx ~k:6.0 ctx in
  let t_target = 112.0 in
  let y = As.yield_bounds a ~t_target in
  let frechet = B.yield_bounds a.As.bounds ~t_target in
  Alcotest.(check bool) "envelope nests in Frechet" true
    (I.lo y >= I.lo frechet -. 1e-12 && I.hi y <= I.hi frechet +. 1e-12);
  List.iter
    (fun method_ ->
      let e = Engine.yield ~method_ ctx ~t_target in
      match As.check ~t_target a e with
      | B.Pass _ -> ()
      | B.Fail _ ->
          Alcotest.failf "%s estimate outside affine envelope"
            (Engine.method_name method_))
    [ Engine.Analytic_clark; Engine.Exact_independent; Engine.Quadrature ];
  let e = Engine.delay_mean ~method_:Engine.Analytic_clark ctx in
  (match As.check a e with
  | B.Pass _ -> ()
  | B.Fail _ -> Alcotest.fail "Clark mean outside affine mean envelope");
  let findings = As.findings ~t_target a in
  Alcotest.(check bool) "findings non-empty" true (findings <> []);
  Alcotest.(check bool) "no degenerate errors at k=6" true
    (List.for_all (fun f -> f.Rp.severity <> Rp.Error) findings)

let test_engine_check_stacking () =
  let ctx = moment_ctx () in
  Fun.protect
    ~finally:(fun () ->
      Engine.set_debug_checks false;
      B.install_engine_check ();
      As.install_engine_check ())
    (fun () ->
      B.install_engine_check ();
      As.install_engine_check ();
      Engine.set_debug_checks true;
      let e = Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target:110.0 in
      check_in_range "stacked checks pass" ~lo:0.0 ~hi:1.0 e.Engine.value;
      Engine.add_estimate_check (fun _ ~t_target:_ _ -> Error "stacked boom");
      (match
         Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target:110.0
       with
      | exception Failure msg ->
          Alcotest.(check bool) "appended check ran" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "appended failing check must raise");
      (* register_ replaces the whole stack, clearing the bad check. *)
      Engine.register_estimate_check (fun _ ~t_target:_ _ -> Ok ());
      let e = Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target:110.0 in
      check_in_range "replaced stack passes" ~lo:0.0 ~hi:1.0 e.Engine.value)

(* ---- certificates ----------------------------------------------------- *)

let pt mu sigma = { Ds.mu; Ds.sigma }

let test_certify_verdicts () =
  (* All stages far inside: Frechet lower bound proves. *)
  let proved =
    Cf.of_points ~t_target:100.0 ~yield:0.9
      [| pt 50.0 5.0; pt 60.0 5.0; pt 55.0 4.0 |]
  in
  Alcotest.(check string) "proved" "proved" (Cf.status_name proved.Cf.status);
  Alcotest.(check bool) "no counterexample" true
    (proved.Cf.counterexample = None);
  (* One stage misses the pipeline target outright: refuted with that
     stage as the counterexample, under any dependence. *)
  let refuted =
    Cf.of_points ~t_target:100.0 ~yield:0.9
      [| pt 50.0 5.0; pt 99.0 10.0 |]
  in
  Alcotest.(check string) "refuted" "refuted" (Cf.status_name refuted.Cf.status);
  (match refuted.Cf.counterexample with
  | Some c -> Alcotest.(check int) "counterexample stage" 1 c.Cf.stage
  | None -> Alcotest.fail "refuted certificate must carry a counterexample");
  Alcotest.(check bool) "refuting finding is an error" true
    (List.exists (fun f -> f.Rp.severity = Rp.Error) (Cf.findings refuted));
  (* Stage yields sit just above yield^(1/n): the independence product
     clears the target but the dependence-free Fréchet lower bound does
     not, so without a correlation sign the certificate cannot decide. *)
  let n = 20 in
  let phi = (0.9 ** (1.0 /. float_of_int n)) +. 1e-4 in
  let z = Spv_stats.Special.big_phi_inv phi in
  let stages = Array.make n (pt 100.0 10.0) in
  let t_target = 100.0 +. (10.0 *. z) in
  let marginal = Cf.of_points ~t_target ~yield:0.9 stages in
  Alcotest.(check string) "inconclusive" "inconclusive"
    (Cf.status_name marginal.Cf.status);
  (* The same design proves once nonnegative correlation enables the
     Slepian product path. *)
  let slepian =
    Cf.of_points ~nonneg_correlation:true ~t_target ~yield:0.9 stages
  in
  Alcotest.(check string) "slepian proves" "proved"
    (Cf.status_name slepian.Cf.status);
  Alcotest.(check bool) "product reached target" true
    (slepian.Cf.product_yield >= 0.9);
  check_raises_invalid "empty stages" (fun () ->
      ignore (Cf.of_points ~t_target:100.0 ~yield:0.9 [||]));
  check_raises_invalid "yield out of range" (fun () ->
      ignore (Cf.of_points ~t_target:100.0 ~yield:0.4 [| pt 50.0 5.0 |]));
  check_raises_invalid "negative sigma" (fun () ->
      ignore (Cf.of_points ~t_target:100.0 ~yield:0.9 [| pt 50.0 (-1.0) |]))

let test_certify_of_ctx () =
  let ctx = moment_ctx () in
  let c = Cf.of_ctx ~yield:0.9 ctx in
  Alcotest.(check bool) "positive uniform correlation detected" true
    c.Cf.nonneg_correlation;
  Alcotest.(check string) "mu+3sigma default target proves" "proved"
    (Cf.status_name c.Cf.status)

let test_certify_parse () =
  let good =
    "# comment\n\
     t_target 100.0\n\
     yield 0.9\n\
     stage 1 60.0\t5.0  # tabs and trailing comments\n\
     stage 0 50.0 4.0\n"
  in
  (match Cf.parse_solution good with
  | Ok s ->
      check_float "t_target" 100.0 s.Cf.sol_t_target;
      check_float "yield" 0.9 s.Cf.sol_yield;
      check_float "stage order restored" 50.0 s.Cf.points.(0).Ds.mu;
      check_float "stage 1 sigma" 5.0 s.Cf.points.(1).Ds.sigma
  | Error e -> Alcotest.failf "good solution rejected: %s" e);
  let expect_error name text =
    match Cf.parse_solution text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed solution accepted" name
  in
  expect_error "missing t_target" "yield 0.9\nstage 0 1 1\n";
  expect_error "missing yield" "t_target 10\nstage 0 1 1\n";
  expect_error "no stages" "t_target 10\nyield 0.9\n";
  expect_error "duplicate stage"
    "t_target 10\nyield 0.9\nstage 0 1 1\nstage 0 2 2\n";
  expect_error "gap in indices" "t_target 10\nyield 0.9\nstage 1 1 1\n";
  expect_error "bad float" "t_target ten\nyield 0.9\nstage 0 1 1\n";
  expect_error "unknown directive" "t_target 10\nyield 0.9\nfrobnicate 1\n"

let test_certify_robust_wrappers () =
  (match Ck.certify_points ~t_target:100.0 ~yield:0.9 [| pt 99.0 10.0 |] with
  | Ok c -> (
      match Ck.certificate_error c with
      | Some err ->
          Alcotest.(check int) "refutation exits 8" 8 (Errors.exit_code err)
      | None -> Alcotest.fail "refuted certificate must map to an error")
  | Error _ -> Alcotest.fail "certify_points must build the certificate");
  match Ck.certify_points ~t_target:100.0 ~yield:0.9 [| pt 50.0 5.0 |] with
  | Ok c ->
      Alcotest.(check bool) "proved certificate has no error" true
        (Ck.certificate_error c = None)
  | Error _ -> Alcotest.fail "certify_points must build the certificate"

let test_sizing_hook () =
  let module H = Spv_sizing.Certify_hook in
  (* The hook is on by default since the ROADMAP promotion; restore
     that default on the way out. *)
  Fun.protect
    ~finally:(fun () ->
      H.set_enabled true;
      Cf.install_sizing_check ())
    (fun () ->
      Cf.install_sizing_check ();
      H.set_enabled true;
      Alcotest.(check bool) "enabled" true (H.is_enabled ());
      (* A converged report that misses its allocation must refute. *)
      (match
         H.postcondition ~where:"test" ~t_target:100.0 ~z:2.0 ~converged:true
           ~mu:95.0 ~sigma:10.0
       with
      | exception Failure msg ->
          Alcotest.(check bool) "marker present" true
            (Ck.is_refutation msg)
      | () -> Alcotest.fail "missed allocation must raise");
      (* Checked.protect maps the marker onto Certificate_refuted. *)
      (match
         Ck.protect ~where:"test" (fun () ->
             H.postcondition ~where:"test" ~t_target:100.0 ~z:2.0
               ~converged:true ~mu:95.0 ~sigma:10.0)
       with
      | Error err -> Alcotest.(check int) "exit code 8" 8 (Errors.exit_code err)
      | Ok () -> Alcotest.fail "protect must surface the refutation");
      (* Meeting the allocation, unconverged reports and disabled hooks
         all pass. *)
      H.postcondition ~where:"test" ~t_target:100.0 ~z:2.0 ~converged:true
        ~mu:80.0 ~sigma:5.0;
      H.postcondition ~where:"test" ~t_target:100.0 ~z:2.0 ~converged:false
        ~mu:95.0 ~sigma:10.0;
      H.set_enabled false;
      H.postcondition ~where:"test" ~t_target:100.0 ~z:2.0 ~converged:true
        ~mu:95.0 ~sigma:10.0)

(* ---- report schema ---------------------------------------------------- *)

let find_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let test_schema_version () =
  Alcotest.(check int) "schema version" 4 Rp.schema_version;
  let doc = Rp.to_json (Rp.of_findings [ Rp.finding ~pass:"p" "m" ]) in
  let tag = Printf.sprintf "\"schema_version\": %d" Rp.schema_version in
  match (find_substring ~needle:tag doc, find_substring ~needle:"findings" doc) with
  | Some sv, Some fd ->
      Alcotest.(check bool) "schema_version precedes findings" true (sv < fd)
  | None, _ -> Alcotest.fail "schema_version tag missing from JSON"
  | _, None -> Alcotest.fail "findings array missing from JSON"

let suite =
  [
    quick "interval extensions" test_interval_extensions;
    quick "affine linear ops" test_affine_linear_ops;
    quick "affine escape budget" test_affine_escape_budget;
    slow "max2 soundness (MC)" test_affine_max2_soundness_mc;
    quick "absorb_dust" test_affine_absorb_dust;
    quick "max2 remainder separation" test_affine_max2_remainder_separation;
    slow "model containment 10k" test_model_containment_10k;
    slow "gate containment 10k" test_gate_containment_10k;
    quick "nesting on random netlists" test_nesting_random_netlists;
    slow "nesting and tightness on c432" test_nesting_and_tightness_iscas;
    quick "yield envelope and checks" test_yield_envelope_and_checks;
    quick "engine check stacking" test_engine_check_stacking;
    quick "certify verdicts" test_certify_verdicts;
    quick "certify of_ctx" test_certify_of_ctx;
    quick "certify parser" test_certify_parse;
    quick "certify robust wrappers" test_certify_robust_wrappers;
    quick "sizing hook" test_sizing_hook;
    quick "schema version" test_schema_version;
  ]
