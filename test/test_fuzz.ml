open Helpers
module Fuzz = Spv_circuit.Fuzz
module Netlist = Spv_circuit.Netlist
module Topo = Spv_circuit.Topo
module Bf = Spv_circuit.Bench_format
module Rng = Spv_stats.Rng
module Oracle = Spv_robust.Oracle
module Fuzz_run = Spv_robust.Fuzz_run

let bench_of_pipeline nets =
  String.concat "\n====\n" (Array.to_list (Array.map Bf.to_string nets))

(* ---- attenuation schedule ------------------------------------------- *)

let test_caps_respected () =
  let config = { Fuzz.default_config with max_gates = 40; max_depth = 8 } in
  for seed = 0 to 199 do
    let nets = Fuzz.generate ~config (Rng.create ~seed) in
    let n_stages = Array.length nets in
    check_in_range "stage count" ~lo:1.0
      ~hi:(float_of_int config.Fuzz.max_stages)
      (float_of_int n_stages);
    Array.iter
      (fun net ->
        let gates = Netlist.n_gates net in
        if gates > config.Fuzz.max_gates then
          Alcotest.failf "seed %d: %d gates above cap" seed gates;
        let depth = Topo.depth net in
        if depth > config.Fuzz.max_depth then
          Alcotest.failf "seed %d: depth %d above cap" seed depth;
        if gates < 1 then Alcotest.failf "seed %d: empty stage" seed;
        if Array.length (Netlist.outputs net) < 1 then
          Alcotest.failf "seed %d: no outputs" seed)
      nets
  done

(* The attenuated coins keep expected size well under the hard caps —
   if the caps were doing all the bounding, the mean would pile up at
   the cap and the whole corpus would look alike. *)
let test_attenuation_keeps_mean_finite () =
  let config = { Fuzz.default_config with max_gates = 120; max_depth = 20 } in
  let n = 200 in
  let total_gates = ref 0 and total_depth = ref 0 and stages = ref 0 in
  for seed = 0 to n - 1 do
    let nets = Fuzz.generate ~config (Rng.create ~seed) in
    Array.iter
      (fun net ->
        total_gates := !total_gates + Netlist.n_gates net;
        total_depth := !total_depth + Topo.depth net;
        incr stages)
      nets
  done;
  let mean_gates = float_of_int !total_gates /. float_of_int !stages in
  let mean_depth = float_of_int !total_depth /. float_of_int !stages in
  check_in_range "mean gates under cap" ~lo:2.0
    ~hi:(0.75 *. float_of_int config.Fuzz.max_gates)
    mean_gates;
  check_in_range "mean depth under cap" ~lo:1.0
    ~hi:(0.75 *. float_of_int config.Fuzz.max_depth)
    mean_depth

let mean_gates ~attenuation ~seeds =
  let config =
    { Fuzz.default_config with max_gates = 200; max_depth = 16; attenuation }
  in
  let total = ref 0 and stages = ref 0 in
  for seed = 0 to seeds - 1 do
    let nets = Fuzz.generate ~config (Rng.create ~seed) in
    Array.iter
      (fun net ->
        total := !total + Netlist.n_gates net;
        incr stages)
      nets
  done;
  float_of_int !total /. float_of_int !stages

let test_attenuation_monotone () =
  let fast = mean_gates ~attenuation:0.5 ~seeds:80 in
  let slow = mean_gates ~attenuation:0.95 ~seeds:80 in
  if not (fast < slow) then
    Alcotest.failf "attenuation 0.5 mean %.1f not below 0.95 mean %.1f" fast
      slow

let test_config_validation () =
  check_raises_invalid "bad attenuation" (fun () ->
      Fuzz.generate
        ~config:{ Fuzz.default_config with attenuation = 0.0 }
        (Rng.create ~seed:1));
  check_raises_invalid "bad grow_p" (fun () ->
      Fuzz.generate
        ~config:{ Fuzz.default_config with grow_p = 1.5 }
        (Rng.create ~seed:1));
  check_raises_invalid "bad caps" (fun () ->
      Fuzz.generate
        ~config:{ Fuzz.default_config with max_gates = 0 }
        (Rng.create ~seed:1))

let test_quantize_size_grid () =
  let c = Fuzz.default_config in
  List.iter
    (fun v ->
      let q = Fuzz.quantize_size c v in
      check_in_range "quantized range" ~lo:0.25 ~hi:c.Fuzz.max_size q;
      let grid = q *. 4.0 in
      check_float ~eps:1e-12 "on 1/4 grid" (Float.round grid) grid)
    [ 0.0; 0.1; 0.26; 1.0; 1.37; 3.99; 100.0; -5.0 ]

(* ---- determinism ---------------------------------------------------- *)

let test_generate_deterministic () =
  List.iter
    (fun seed ->
      let a = Fuzz.generate (Rng.create ~seed) in
      let b = Fuzz.generate (Rng.create ~seed) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d bench text" seed)
        (bench_of_pipeline a) (bench_of_pipeline b))
    [ 0; 1; 42; 1999 ]

let test_mutate_deterministic_and_valid () =
  for seed = 0 to 49 do
    let run () =
      let rng = Rng.create ~seed in
      let nets = Fuzz.generate rng in
      Fuzz.mutate rng nets
    in
    let a = run () in
    let b = run () in
    Alcotest.(check string)
      (Printf.sprintf "seed %d mutated text" seed)
      (bench_of_pipeline a) (bench_of_pipeline b);
    Array.iter
      (fun net ->
        if Netlist.n_gates net < 1 then
          Alcotest.failf "seed %d: mutation emptied a stage" seed;
        if Array.length (Netlist.outputs net) < 1 then
          Alcotest.failf "seed %d: mutation dropped all outputs" seed;
        (* every mutated stage must still round-trip through .bench *)
        match Bf.of_string_result (Bf.to_string net) with
        | Ok back ->
            if not (Bf.roundtrip_equal net back) then
              Alcotest.failf "seed %d: mutated stage does not round-trip"
                seed
        | Error e ->
            Alcotest.failf "seed %d: mutated stage unparsable: %s" seed
              (Bf.parse_error_to_string e))
      a
  done

let test_mutate_leaves_input_untouched () =
  let rng = Rng.create ~seed:7 in
  let nets = Fuzz.generate rng in
  let before = bench_of_pipeline nets in
  let _mutated = Fuzz.mutate rng nets in
  Alcotest.(check string) "input pipeline unchanged" before
    (bench_of_pipeline nets)

let test_process_roundtrip () =
  for seed = 0 to 199 do
    let p = Fuzz.random_process (Rng.create ~seed) in
    (match p.Fuzz.inter_vth_mv with
    | Some v -> check_in_range "inter range" ~lo:0.0 ~hi:80.0 v
    | None -> ());
    (match p.Fuzz.leff_rel_inter with
    | Some v -> check_in_range "leff range" ~lo:0.0 ~hi:0.15 v
    | None -> ());
    let s = Fuzz.process_to_string p in
    match Fuzz.process_of_string s with
    | Ok q ->
        if q <> p then
          Alcotest.failf "seed %d: %s did not round-trip" seed s
    | Error e -> Alcotest.failf "seed %d: %s unparsable: %s" seed s e
  done

(* ---- oracle / shrinker ---------------------------------------------- *)

(* Zeroed tolerances turn ordinary sampling noise into guaranteed
   Agreement violations — a deterministic counterexample supply for
   the shrinker without planting a real estimator bug. *)
let weak_tolerances =
  { Oracle.default_tolerances with clark_abs = 0.0; agree_z = 0.0 }

let violating_case = { Oracle.gen_seed = 42; max_gates = 40 }

let test_weak_tolerances_violate () =
  let outcome =
    Oracle.run_case ~tolerances:weak_tolerances
      ~invariants:[ Oracle.Agreement ] ~check_seed:42 violating_case
  in
  Alcotest.(check bool) "violations found" true
    (outcome.Oracle.violations <> [])

let shrink_once () =
  let m = Oracle.materialise violating_case in
  Oracle.shrink ~tolerances:weak_tolerances ~invariant:Oracle.Agreement
    ~check_seed:42 m.Oracle.circuits m.Oracle.process

let test_shrunk_still_violates () =
  let circuits, process, steps = shrink_once () in
  if steps < 1 then Alcotest.fail "shrinker accepted no step";
  let ctx = Oracle.ctx_of circuits process in
  let _, violations =
    Oracle.check_ctx ~tolerances:weak_tolerances
      ~invariants:[ Oracle.Agreement ] ctx ~seed:42
  in
  Alcotest.(check bool) "shrunk case still violates" true (violations <> [])

let test_shrink_deterministic () =
  let circuits_a, process_a, steps_a = shrink_once () in
  let circuits_b, process_b, steps_b = shrink_once () in
  Alcotest.(check int) "same steps" steps_a steps_b;
  Alcotest.(check string) "same circuits" (bench_of_pipeline circuits_a)
    (bench_of_pipeline circuits_b);
  Alcotest.(check string) "same process"
    (Fuzz.process_to_string process_a)
    (Fuzz.process_to_string process_b)

let test_shrink_terminates_and_shrinks () =
  let m = Oracle.materialise violating_case in
  let before =
    Array.fold_left (fun acc n -> acc + Netlist.n_gates n) 0 m.Oracle.circuits
  in
  let circuits, _, _ = shrink_once () in
  let after =
    Array.fold_left (fun acc n -> acc + Netlist.n_gates n) 0 circuits
  in
  if after > before then
    Alcotest.failf "shrinker grew the case: %d -> %d gates" before after;
  if Array.length circuits < 1 then Alcotest.fail "shrinker dropped all stages"

let test_finding_roundtrip () =
  let circuits, process, steps = shrink_once () in
  let outcome =
    Oracle.run_case ~tolerances:weak_tolerances
      ~invariants:[ Oracle.Agreement ] ~check_seed:42 violating_case
  in
  let violation = List.hd outcome.Oracle.violations in
  let finding =
    {
      Oracle.found = violating_case;
      check_seed = 42;
      violation;
      circuits;
      process;
      shrink_steps = steps;
    }
  in
  match Oracle.finding_of_string (Oracle.finding_to_string finding) with
  | Error e -> Alcotest.failf "finding did not parse back: %s" e
  | Ok back ->
      Alcotest.(check int) "gen_seed" finding.Oracle.found.Oracle.gen_seed
        back.Oracle.found.Oracle.gen_seed;
      Alcotest.(check int) "shrink steps" finding.Oracle.shrink_steps
        back.Oracle.shrink_steps;
      Alcotest.(check string) "process"
        (Fuzz.process_to_string finding.Oracle.process)
        (Fuzz.process_to_string back.Oracle.process);
      Alcotest.(check string) "circuits"
        (bench_of_pipeline finding.Oracle.circuits)
        (bench_of_pipeline back.Oracle.circuits)

(* ---- campaign ------------------------------------------------------- *)

let small_campaign =
  { Fuzz_run.default_config with trials = 4; max_gates = 30 }

let test_healthy_campaign_clean () =
  let summary = Fuzz_run.run ~now:(fun () -> 0.0) small_campaign in
  Alcotest.(check int) "no violations" 0 summary.Fuzz_run.violations;
  Alcotest.(check int) "all passed" summary.Fuzz_run.checks_run
    summary.Fuzz_run.checks_passed;
  if summary.Fuzz_run.checks_run < 100 then
    Alcotest.failf "suspiciously few checks: %d" summary.Fuzz_run.checks_run

let test_campaign_output_deterministic () =
  let render cfg =
    let buf = Buffer.create 1024 in
    let summary =
      Fuzz_run.run
        ~now:(fun () -> 0.0)
        ~on_trial:(fun t ->
          Buffer.add_string buf (Fuzz_run.trial_to_json t);
          Buffer.add_char buf '\n')
        cfg
    in
    Buffer.add_string buf (Fuzz_run.summary_to_json summary);
    Buffer.contents buf
  in
  Alcotest.(check string) "byte-identical JSONL" (render small_campaign)
    (render small_campaign)

let test_campaign_flags_violations () =
  let cfg =
    {
      small_campaign with
      Fuzz_run.tolerances = weak_tolerances;
      invariants = [ Oracle.Agreement ];
      trials = 1;
    }
  in
  let summary = Fuzz_run.run ~now:(fun () -> 0.0) cfg in
  Alcotest.(check bool) "violations reported" true
    (summary.Fuzz_run.violations > 0);
  match Fuzz_run.first_error summary with
  | Some e ->
      Alcotest.(check int) "oracle exit code" 9 (Spv_robust.Errors.exit_code e)
  | None -> Alcotest.fail "no first_error despite violations"

let suite =
  [
    quick "caps respected over 200 seeds" test_caps_respected;
    quick "attenuation keeps means finite" test_attenuation_keeps_mean_finite;
    quick "attenuation monotone in mean size" test_attenuation_monotone;
    quick "config validation" test_config_validation;
    quick "size quantization grid" test_quantize_size_grid;
    quick "generate deterministic" test_generate_deterministic;
    quick "mutate deterministic + valid" test_mutate_deterministic_and_valid;
    quick "mutate copies input" test_mutate_leaves_input_untouched;
    quick "process round-trip" test_process_roundtrip;
    slow "weak tolerances violate" test_weak_tolerances_violate;
    slow "shrunk still violates" test_shrunk_still_violates;
    slow "shrink deterministic" test_shrink_deterministic;
    slow "shrink terminates and shrinks" test_shrink_terminates_and_shrinks;
    slow "finding round-trip" test_finding_roundtrip;
    slow "healthy campaign clean" test_healthy_campaign_clean;
    slow "campaign output deterministic" test_campaign_output_deterministic;
    slow "campaign flags violations" test_campaign_flags_violations;
  ]
