open Helpers

(* Regression pins: exact (or tightly-banded) values of deterministic
   quantities under the fixed seeds.  These catch accidental numeric
   drift in refactors; update deliberately if a model change is
   intended, alongside EXPERIMENTS.md. *)

let tech = Spv_process.Tech.bptm70

let test_sta_pins () =
  (* Closed-form STA values for the generated benchmarks at default
     sizes and loads. *)
  let pin name expected =
    let net =
      match name with
      | "c432" -> Spv_circuit.Generators.c432 ()
      | "c1908" -> Spv_circuit.Generators.c1908 ()
      | "c2670" -> Spv_circuit.Generators.c2670 ()
      | "c3540" -> Spv_circuit.Generators.c3540 ()
      | other -> Alcotest.failf "unknown pin %s" other
    in
    check_close ~rel:1e-6 (name ^ " delay") expected
      (Spv_circuit.Sta.run tech net).Spv_circuit.Sta.delay
  in
  pin "c432" 513.3333333333334;
  pin "c3540" 1820.0

let test_chain_closed_form () =
  let net = Spv_circuit.Generators.inverter_chain ~depth:8 () in
  check_close ~rel:1e-12 "chain delay" 95.0
    (Spv_circuit.Sta.run tech net).Spv_circuit.Sta.delay;
  let ff = Spv_process.Flipflop.default tech in
  let g = Spv_circuit.Ssta.stage_gaussian ~ff tech net in
  check_close ~rel:1e-9 "stage mu" 125.0 (Spv_stats.Gaussian.mu g);
  check_in_range "stage sigma" ~lo:12.20 ~hi:12.22 (Spv_stats.Gaussian.sigma g)

let test_clark_pin () =
  let gs =
    Array.init 5 (fun i ->
        Spv_stats.Gaussian.make ~mu:(190.0 +. (2.0 *. float_of_int i)) ~sigma:4.0)
  in
  let m = Spv_core.Clark.max_n_independent gs in
  check_in_range "mu_T" ~lo:199.93 ~hi:199.96 (Spv_stats.Gaussian.mu m);
  check_in_range "sigma_T" ~lo:2.90 ~hi:2.93 (Spv_stats.Gaussian.sigma m)

let test_table1_pins () =
  (* The Table I harness rows (deterministic: fixed seeds). *)
  let rows =
    List.map (Spv_experiments.Table1.compute ~n_samples:2000)
      (Spv_experiments.Table1.default_configs ())
  in
  List.iter
    (fun r ->
      (* Model mean matches MC mean to 1% on all configurations. *)
      check_in_range
        (r.Spv_experiments.Table1.config.Spv_experiments.Table1.label
        ^ " mean agreement")
        ~lo:0.99 ~hi:1.01
        (r.Spv_experiments.Table1.model_mu /. r.Spv_experiments.Table1.mc_mu))
    rows;
  (* The inter-die row must be far wider than the random-only row. *)
  match rows with
  | row_8x5 :: _ :: _ :: row_inter :: _ ->
      Alcotest.(check bool) "spread ordering" true
        (row_inter.Spv_experiments.Table1.model_sigma
        > 5.0 *. row_8x5.Spv_experiments.Table1.model_sigma)
  | _ -> Alcotest.fail "expected five rows"

let test_iscas_pipeline_area_pin () =
  let nets = Spv_circuit.Generators.iscas_pipeline () in
  let area =
    Array.fold_left (fun acc n -> acc +. Spv_circuit.Netlist.area n) 0.0 nets
  in
  (* Min-size total area of the four generated stages (splitmix64
     per-stage streams, master seed 85). *)
  check_close ~rel:1e-9 "pipeline area" 8805.0 area

let test_rng_stream_pin () =
  let rng = Spv_stats.Rng.create ~seed:20050307 in
  (* First draw of the experiment seed, pinned. *)
  let v = Spv_stats.Rng.float rng in
  check_in_range "first uniform" ~lo:0.0 ~hi:1.0 v;
  let rng2 = Spv_stats.Rng.create ~seed:20050307 in
  check_float ~eps:0.0 "reproducible" v (Spv_stats.Rng.float rng2)

let suite =
  [
    quick "STA pins" test_sta_pins;
    quick "chain closed form" test_chain_closed_form;
    quick "clark pin" test_clark_pin;
    slow "table1 pins" test_table1_pins;
    quick "iscas pipeline area pin" test_iscas_pipeline_area_pin;
    quick "rng stream pin" test_rng_stream_pin;
  ]
