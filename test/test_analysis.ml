open Helpers
module G = Spv_stats.Gaussian
module C = Spv_stats.Correlation
module Stage = Spv_core.Stage
module P = Spv_core.Pipeline
module Engine = Spv_engine.Engine
module I = Spv_analysis.Interval
module Rp = Spv_analysis.Report
module B = Spv_analysis.Bounds
module S = Spv_analysis.Structure
module Cr = Spv_analysis.Static_criticality
module Gen = Spv_circuit.Generators

let tech = Spv_process.Tech.bptm70

let moment_ctx ?(rho = 0.3) mus sigmas =
  let stages =
    Array.map2 (fun mu sigma -> Stage.of_moments ~mu ~sigma ()) mus sigmas
  in
  Engine.Ctx.of_pipeline
    (P.make stages ~corr:(C.uniform ~n:(Array.length mus) ~rho))

let seed_moment_ctx () =
  moment_ctx [| 100.0; 95.0; 90.0; 105.0 |] [| 5.0; 4.0; 3.0; 6.0 |]

let seed_gate_ctx () =
  Engine.Ctx.of_circuits ~ff:(Spv_process.Flipflop.default tech) tech
    (Gen.inverter_chain_pipeline ~stages:3 ~depth:8 ())

(* A stage with one long chain and one trivially short side path: the
   circuit where static pruning must fire. *)
let imbalanced_net ~depth =
  let b = Buffer.create 256 in
  Buffer.add_string b "INPUT(a)\nINPUT(b)\n";
  Buffer.add_string b "n1 = INV(a)\n";
  for i = 2 to depth do
    Buffer.add_string b (Printf.sprintf "n%d = INV(n%d)\n" i (i - 1))
  done;
  Buffer.add_string b "side = INV(b)\n";
  Buffer.add_string b (Printf.sprintf "OUTPUT(n%d)\nOUTPUT(side)\n" depth);
  match Spv_circuit.Bench_format.of_string_result (Buffer.contents b) with
  | Ok net -> net
  | Error _ -> Alcotest.fail "imbalanced_net: generator emitted bad bench"

(* ---- interval domain ------------------------------------------------- *)

let test_interval_ops () =
  let a = I.make ~lo:1.0 ~hi:3.0 and b = I.make ~lo:2.0 ~hi:5.0 in
  check_float "add lo" 3.0 (I.lo (I.add a b));
  check_float "add hi" 8.0 (I.hi (I.add a b));
  check_float "max2 lo" 2.0 (I.lo (I.max2 a b));
  check_float "max2 hi" 5.0 (I.hi (I.max2 a b));
  check_float "hull lo" 1.0 (I.lo (I.hull a b));
  check_float "hull hi" 5.0 (I.hi (I.hull a b));
  check_float "scale hi" 6.0 (I.hi (I.scale a 2.0));
  check_float "shift lo" 0.0 (I.lo (I.shift a (-1.0)));
  Alcotest.(check bool) "contains" true (I.contains a 3.0);
  Alcotest.(check bool) "slack widens" true (I.contains ~slack:0.5 a 3.4);
  Alcotest.(check bool) "NaN never contained" false (I.contains a Float.nan);
  Alcotest.(check int) "mem_all counts escapes" 2
    (I.mem_all a [| 0.0; 1.5; 2.5; 9.0 |]);
  check_raises_invalid "lo > hi" (fun () -> I.make ~lo:2.0 ~hi:1.0);
  check_raises_invalid "NaN endpoint" (fun () ->
      I.make ~lo:Float.nan ~hi:1.0);
  check_raises_invalid "negative scale" (fun () -> I.scale a (-1.0));
  check_raises_invalid "empty max" (fun () -> I.max_many [||])

(* ---- report framework ------------------------------------------------ *)

let test_report_sorting_and_json () =
  let f1 = Rp.finding ~pass:"zeta" "late info" in
  let f2 =
    Rp.finding ~severity:Rp.Error ~location:(Rp.Stage 1) ~pass:"alpha"
      ~data:[ ("x", Rp.Num Float.infinity) ]
      "an error"
  in
  let f3 = Rp.finding ~severity:Rp.Warn ~pass:"beta" "a warning" in
  let r = Rp.sorted (Rp.of_findings [ f1; f2; f3 ]) in
  (match r.Rp.findings with
  | [ a; b; c ] ->
      Alcotest.(check string) "errors first" "alpha" a.Rp.pass;
      Alcotest.(check string) "then warnings" "beta" b.Rp.pass;
      Alcotest.(check string) "info last" "zeta" c.Rp.pass
  | _ -> Alcotest.fail "expected three findings");
  Alcotest.(check int) "error count" 1 (Rp.count r Rp.Error);
  Alcotest.(check bool) "has_errors" true (Rp.has_errors r);
  let json = Rp.to_json r in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "non-finite payload kept parseable" true
    (has "\"inf\"");
  Alcotest.(check bool) "counts object present" true (has "\"counts\"")

(* ---- sample containment (the abstract domain is sound) --------------- *)

let test_bounds_contain_10k_mvn_samples () =
  let ctx = seed_moment_ctx () in
  let b = B.of_ctx ctx in
  let samples = Engine.sample_delays ~seed:3 ctx ~n:10_000 in
  Alcotest.(check int) "all 10k samples inside the pipeline bound" 0
    (I.mem_all ~slack:1e-9 b.B.delay samples)

let gen_specs =
  QCheck2.Gen.(
    list_size (int_range 2 6)
      (pair (float_range 50.0 150.0) (float_range 0.2 12.0)))

let prop_bounds_contain_samples_random_pipelines =
  prop ~count:25 "random moment pipelines: samples inside bounds"
    QCheck2.Gen.(pair gen_specs (float_range 0.0 0.8))
    (fun (specs, rho) ->
      let mus = Array.of_list (List.map fst specs)
      and sigmas = Array.of_list (List.map snd specs) in
      let ctx = moment_ctx ~rho mus sigmas in
      let b = B.of_ctx ctx in
      let samples = Engine.sample_delays ~seed:5 ctx ~n:400 in
      I.mem_all ~slack:1e-9 b.B.delay samples = 0)

let prop_bounds_contain_samples_random_netlists =
  prop ~count:8 "random netlists: gate-level MC inside bounds"
    QCheck2.Gen.(
      quad (int_range 2 5) (int_range 8 40) (int_range 2 6) (int_range 0 999))
    (fun (inputs, gates, depth, seed) ->
      let gates = Int.max gates depth in
      let net =
        Gen.random_logic ~name:"rand" ~inputs ~gates ~depth ~seed
      in
      let ctx = Engine.Ctx.of_circuits tech [| net |] in
      let b = B.of_ctx ctx in
      let lin = Engine.gate_level_delays ~seed:7 ctx ~n:200 in
      let exact = Engine.gate_level_delays ~exact:true ~seed:8 ctx ~n:200 in
      I.mem_all ~slack:1e-9 b.B.delay lin = 0
      && I.mem_all ~slack:1e-9 b.B.delay exact = 0)

let prop_repaired_correlation_within_bounds =
  (* A non-PSD "correlation" repaired by the sym_eig clipping path must
     still yield a pipeline whose samples respect the marginal bounds
     (the repair rescales to unit diagonal, leaving marginals alone). *)
  prop ~count:20 "sym_eig-repaired pipelines: samples inside bounds"
    QCheck2.Gen.(
      pair (int_range 3 5)
        (pair (float_range (-0.95) 0.95) (float_range (-0.95) 0.95)))
    (fun (n, (r1, r2)) ->
      let m = Spv_stats.Matrix.create ~rows:n ~cols:n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Spv_stats.Matrix.set m i j
            (if i = j then 1.0 else if (i + j) mod 2 = 0 then r1 else r2)
        done
      done;
      let mus = Array.init n (fun i -> 100.0 +. float_of_int i)
      and sigmas = Array.make n 5.0 in
      match
        Spv_robust.Checked.pipeline_of_matrix ~mus ~sigmas ~corr:m ()
      with
      | Error _ -> true (* unrepairable inputs are allowed to be rejected *)
      | Ok p ->
          let ctx = Engine.Ctx.of_pipeline p in
          let b = B.of_ctx ctx in
          let samples = Engine.sample_delays ~seed:9 ctx ~n:400 in
          I.mem_all ~slack:1e-9 b.B.delay samples = 0)

(* ---- estimate containment (the acceptance criterion) ----------------- *)

let check_all_methods ctx name =
  let b = B.of_ctx ctx in
  let mu_t = G.mu (Engine.Ctx.delay_distribution ctx)
  and sigma_t = G.sigma (Engine.Ctx.delay_distribution ctx) in
  let t_target = mu_t +. sigma_t in
  List.iter
    (fun method_ ->
      let e = Engine.yield ~method_ ~seed:7 ~n:4000 ctx ~t_target in
      let v = B.check ~t_target b e in
      if not (B.verdict_ok v) then
        Alcotest.failf "%s: %s yield %g escapes the Fréchet bounds %s" name
          (Engine.method_name method_) e.Engine.value
          (I.to_string (B.yield_bounds b ~t_target)))
    Engine.all_methods;
  List.iter
    (fun method_ ->
      let e = Engine.delay_mean ~method_ ~seed:7 ~n:4000 ctx in
      let v = B.check b e in
      if not (B.verdict_ok v) then
        Alcotest.failf "%s: %s mean %g escapes the envelope %s" name
          (Engine.method_name method_) e.Engine.value (I.to_string b.B.mean))
    [ Engine.Analytic_clark; Engine.Mc; Engine.Adaptive_mc ]

let test_every_method_within_bounds_moments () =
  check_all_methods (seed_moment_ctx ()) "moments pipeline"

let test_every_method_within_bounds_gate_level () =
  check_all_methods (seed_gate_ctx ()) "gate-level pipeline"

let test_verdicts () =
  let b = B.of_ctx (seed_moment_ctx ()) in
  let est value =
    {
      Engine.value;
      std_error = 0.0;
      n_samples = 0;
      method_ = Engine.Exact_independent;
      stop = Engine.Closed_form;
      hier_bound = None;
      ess = None;
      proposal = None;
    }
  in
  (match B.check ~t_target:1e9 b (est 2.0) with
  | B.Fail { excess; _ } -> check_in_range "excess" ~lo:0.9 ~hi:1.1 excess
  | B.Pass _ -> Alcotest.fail "yield 2.0 must fail any yield bound");
  (match B.check b (est 0.0) with
  | B.Fail _ -> ()
  | B.Pass _ -> Alcotest.fail "mean 0 must fall below the Jensen bound");
  match B.check ~slack:1e12 b (est 0.0) with
  | B.Pass _ -> ()
  | B.Fail _ -> Alcotest.fail "huge slack must pass"

let test_engine_debug_hook () =
  let ctx = seed_moment_ctx () in
  Fun.protect
    ~finally:(fun () ->
      Engine.set_debug_checks false;
      Spv_analysis.Bounds.install_engine_check ())
    (fun () ->
      Spv_analysis.Bounds.install_engine_check ();
      Engine.set_debug_checks true;
      Alcotest.(check bool) "enabled" true (Engine.debug_checks_enabled ());
      let e =
        Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target:110.0
      in
      check_in_range "yield sane under checks" ~lo:0.0 ~hi:1.0 e.Engine.value;
      let _ = Engine.delay_mean ~method_:Engine.Analytic_clark ctx in
      Engine.register_estimate_check (fun _ ~t_target:_ _ -> Error "boom");
      match Engine.yield ~method_:Engine.Analytic_clark ctx ~t_target:110.0 with
      | exception Failure msg ->
          Alcotest.(check bool) "oracle message surfaced" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "violated postcondition must raise Failure")

(* ---- criticality and pruning ----------------------------------------- *)

let test_criticality_invariants () =
  let net = Gen.ripple_carry_adder ~bits:8 in
  let t = Cr.analyse tech net in
  let nominal = (Spv_circuit.Sta.run tech net ~output_load:4.0).Spv_circuit.Sta.delay in
  check_in_range "corner STAs bracket nominal" ~lo:t.Cr.lo_sta.Spv_circuit.Sta.delay
    ~hi:t.Cr.hi_sta.Spv_circuit.Sta.delay nominal;
  check_float "lo_delay is the lo-corner delay"
    t.Cr.lo_sta.Spv_circuit.Sta.delay t.Cr.lo_delay;
  Alcotest.(check bool) "cone non-empty" true (Cr.cone t <> []);
  let ctx = Engine.Ctx.of_circuits tech [| net |] in
  let mask = (Cr.masks_for_ctx ctx).(0) in
  List.iter
    (fun id ->
      if not mask.(id) then
        Alcotest.failf "nominal critical path node %d pruned away" id)
    (Engine.Ctx.critical_path ctx 0)

let test_pruning_bit_identical () =
  let net = imbalanced_net ~depth:50 in
  let ctx = Engine.Ctx.of_circuits tech [| net |] in
  let k = 3.0 in
  let masks = Cr.masks_for_ctx ~k ctx in
  let pruned =
    Array.fold_left
      (fun acc m ->
        acc + Array.fold_left (fun a b -> if b then a else a + 1) 0 m)
      0 masks
  in
  if pruned = 0 then
    Alcotest.fail "imbalanced stage must have statically prunable gates";
  let pctx = Engine.Ctx.with_prune ctx masks in
  (match Engine.Ctx.prune_masks pctx with
  | Some m -> Alcotest.(check int) "masks stored" (Array.length masks) (Array.length m)
  | None -> Alcotest.fail "prune_masks lost");
  let compare_streams ~exact =
    let a = Engine.gate_level_delays ~exact ~seed:11 ctx ~n:400 in
    let b = Engine.gate_level_delays ~exact ~seed:11 pctx ~n:400 in
    Array.iteri
      (fun i x ->
        if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
        then
          Alcotest.failf "exact=%b trial %d: pruned %h <> unpruned %h" exact i
            b.(i) x)
      a
  in
  compare_streams ~exact:false;
  compare_streams ~exact:true;
  let unpruned = Engine.Ctx.without_prune pctx in
  Alcotest.(check bool) "without_prune clears" true
    (Engine.Ctx.prune_masks unpruned = None)

let test_with_prune_validation () =
  let net = imbalanced_net ~depth:10 in
  let ctx = Engine.Ctx.of_circuits tech [| net |] in
  let n_nodes = Spv_circuit.Netlist.n_nodes net in
  check_raises_invalid "stage count mismatch" (fun () ->
      Engine.Ctx.with_prune ctx [||]);
  check_raises_invalid "mask length mismatch" (fun () ->
      Engine.Ctx.with_prune ctx [| Array.make (n_nodes + 1) true |]);
  check_raises_invalid "every output masked" (fun () ->
      Engine.Ctx.with_prune ctx [| Array.make n_nodes false |]);
  check_raises_invalid "moments context" (fun () ->
      Engine.Ctx.with_prune (seed_moment_ctx ()) [||])

let test_refresh_stage_drops_masks () =
  let ctx = Cr.prune_ctx (Engine.Ctx.of_circuits tech [| imbalanced_net ~depth:50 |]) in
  match Engine.Ctx.prune_masks ctx with
  | None ->
      (* Default k = 6 proves nothing prunable here (the lo corner of the
         box is vacuously small); prune_ctx still must round-trip. *)
      Alcotest.fail "prune_ctx must store masks"
  | Some _ ->
      let refreshed = Engine.Ctx.refresh_stage ctx 0 in
      (* Refresh drops exactly the refreshed stage's mask: it is
         replaced by an all-true (prune-nothing) mask, never [None] —
         other stages' still-sound masks must survive. *)
      (match Engine.Ctx.prune_masks refreshed with
      | None -> Alcotest.fail "refresh must keep per-stage masks"
      | Some masks ->
          Alcotest.(check int) "one mask per stage" 1 (Array.length masks);
          Alcotest.(check bool) "refreshed stage's mask is all-true" true
            (Array.for_all Fun.id masks.(0)))

(* ---- structure pass -------------------------------------------------- *)

let test_reconvergence_detection () =
  let diamond =
    "INPUT(a)\nu = INV(a)\nv = INV(a)\ny = NAND(u, v)\nOUTPUT(y)\n"
  in
  let net =
    match Spv_circuit.Bench_format.of_string_result diamond with
    | Ok net -> net
    | Error _ -> Alcotest.fail "diamond bench must parse"
  in
  (match S.stems net with
  | [ s ] ->
      Alcotest.(check int) "two branches" 2 s.S.branches;
      Alcotest.(check bool) "reconverges" true (s.S.reconvergence_count >= 1)
  | l -> Alcotest.failf "expected one stem, got %d" (List.length l));
  Alcotest.(check int) "chains have no stems" 0
    (List.length (S.stems (Gen.inverter_chain ~depth:6 ())))

let test_tie_and_order_scores () =
  let tied =
    P.make
      (Array.init 3 (fun _ -> Stage.of_moments ~mu:100.0 ~sigma:5.0 ()))
      ~corr:(C.independent ~n:3)
  and dominated =
    P.make
      [|
        Stage.of_moments ~mu:100.0 ~sigma:2.0 ();
        Stage.of_moments ~mu:160.0 ~sigma:2.0 ();
      |]
      ~corr:(C.independent ~n:2)
  in
  let tied_scores = S.tie_scores tied in
  Array.iter (fun s -> check_in_range "tied score" ~lo:0.99 ~hi:1.0 s) tied_scores;
  let dom_scores = S.tie_scores dominated in
  Array.iter (fun s -> check_in_range "ordered score" ~lo:0.0 ~hi:1e-6 s) dom_scores;
  let spread = S.order_sensitivity tied in
  Alcotest.(check bool) "spreads non-negative" true
    (spread.S.mu_spread >= 0.0 && spread.S.sigma_spread >= 0.0)

(* ---- composed analyzer runs ------------------------------------------ *)

let test_analyze_run_composition () =
  let ctx = seed_gate_ctx () in
  let t_target = G.mu (Engine.Ctx.delay_distribution ctx) *. 1.1 in
  let r = Spv_analysis.Analyze.run ~t_target ctx in
  let report = r.Spv_analysis.Analyze.report in
  Alcotest.(check bool) "no errors on a healthy pipeline" false
    (Rp.has_errors report);
  let passes =
    List.sort_uniq String.compare
      (List.map (fun f -> f.Rp.pass) report.Rp.findings)
  in
  List.iter
    (fun p ->
      if not (List.mem p passes) then Alcotest.failf "pass %s missing" p)
    [ "bounds"; "bounds-check"; "correlation"; "criticality"; "reconvergence" ];
  match r.Spv_analysis.Analyze.criticality with
  | None -> Alcotest.fail "gate-level run must carry criticality results"
  | Some per_stage ->
      Alcotest.(check int) "one result per stage" (Engine.Ctx.n_stages ctx)
        (Array.length per_stage)

let test_analyze_flags_degenerate_bounds () =
  let ctx = seed_gate_ctx () in
  let r = Spv_analysis.Analyze.run ~k:500.0 ctx in
  Alcotest.(check bool) "absurd k reported at Error severity" true
    (Rp.has_errors r.Spv_analysis.Analyze.report)

(* On a single-stage pipeline the Fréchet union lower bound degenerates
   to 1 - (1 - phi), and the floating-point round trip can land one ulp
   above the min-phi upper bound — Interval.make would raise.  The
   sigma below reproduces the exact ulp trip at t = 80 (found by
   driving analyze over a hand-written one-gate bench). *)
let test_yield_bounds_single_stage_ulp () =
  let ctx = moment_ctx ~rho:0.0 [| 100.0 |] [| 9.8857275592138372 |] in
  let b = B.of_ctx ctx in
  for i = 0 to 400 do
    let t_target = 60.0 +. (0.2 *. float_of_int i) in
    let iv = B.yield_bounds b ~t_target in
    if I.lo iv > I.hi iv then
      Alcotest.failf "t=%g: lo %.17g > hi %.17g" t_target (I.lo iv) (I.hi iv);
    (* single stage: the enclosure is (up to the clamp) a point *)
    check_in_range "point enclosure" ~lo:(I.lo iv)
      ~hi:(I.lo iv +. 1e-12) (I.hi iv)
  done

let suite =
  [
    quick "interval ops" test_interval_ops;
    quick "report sorting and json" test_report_sorting_and_json;
    slow "bounds contain 10k MVN samples" test_bounds_contain_10k_mvn_samples;
    prop_bounds_contain_samples_random_pipelines;
    prop_bounds_contain_samples_random_netlists;
    prop_repaired_correlation_within_bounds;
    slow "every estimator within bounds (moments)"
      test_every_method_within_bounds_moments;
    slow "every estimator within bounds (gate-level)"
      test_every_method_within_bounds_gate_level;
    quick "check verdicts" test_verdicts;
    quick "single-stage yield bounds ulp" test_yield_bounds_single_stage_ulp;
    quick "engine debug hook" test_engine_debug_hook;
    quick "criticality invariants" test_criticality_invariants;
    slow "pruned MC bit-identical" test_pruning_bit_identical;
    quick "with_prune validation" test_with_prune_validation;
    quick "refresh_stage drops masks" test_refresh_stage_drops_masks;
    quick "reconvergence detection" test_reconvergence_detection;
    quick "tie and order scores" test_tie_and_order_scores;
    quick "analyze run composition" test_analyze_run_composition;
    quick "analyze flags degenerate bounds" test_analyze_flags_degenerate_bounds;
  ]
