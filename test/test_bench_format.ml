open Helpers
module Bf = Spv_circuit.Bench_format
module Net = Spv_circuit.Netlist
module G = Spv_circuit.Generators

let sample_text =
  {|# a comment
INPUT(a)
INPUT(b)
n1 = NAND(a, b)
n2 = INV(n1) [size=2.5]
OUTPUT(n2)
|}

let test_parse_basic () =
  let net = Bf.of_string sample_text in
  Alcotest.(check int) "gates" 2 (Net.n_gates net);
  Alcotest.(check int) "inputs" 2 (Array.length (Net.input_ids net));
  Alcotest.(check int) "outputs" 1 (Array.length (Net.outputs net));
  (* Size annotation parsed. *)
  let inv_id =
    Array.to_list (Net.gate_ids net)
    |> List.find (fun i ->
           match Net.node net i with
           | Net.Gate { kind = Spv_circuit.Cell.Inv; _ } -> true
           | _ -> false)
  in
  check_float "annotated size" 2.5 (Net.size net inv_id)

let test_parse_functional () =
  let net = Bf.of_string sample_text in
  (* n2 = not (a nand b) = a and b. *)
  List.iter
    (fun (a, b) ->
      let values = Net.eval net ~inputs:[| a; b |] in
      let out = (Net.outputs net).(0) in
      Alcotest.(check bool) (Printf.sprintf "and %b %b" a b) (a && b) values.(out))
    [ (true, true); (true, false); (false, false) ]

let test_out_of_order_statements () =
  let text =
    {|OUTPUT(y)
y = INV(x)
x = NOR(a, b)
INPUT(b)
INPUT(a)
|}
  in
  let net = Bf.of_string text in
  Alcotest.(check int) "gates" 2 (Net.n_gates net)

let test_arity_suffix_resolution () =
  let text =
    {|INPUT(a)
INPUT(b)
INPUT(c)
y = NAND(a, b, c)
OUTPUT(y)
|}
  in
  let net = Bf.of_string text in
  match Net.node net (Net.gate_ids net).(0) with
  | Net.Gate { kind = Spv_circuit.Cell.Nand3; _ } -> ()
  | _ -> Alcotest.fail "expected NAND of three inputs to resolve to nand3"

let test_roundtrip_generated () =
  List.iter
    (fun net ->
      let text = Bf.to_string net in
      let back = Bf.of_string ~name:(Net.name net) text in
      Alcotest.(check bool)
        (Net.name net ^ " roundtrip")
        true
        (Bf.roundtrip_equal net back))
    [
      G.inverter_chain ~depth:5 ();
      G.ripple_carry_adder ~bits:4;
      G.kogge_stone_adder ~bits:4;
      G.array_multiplier ~bits:3;
      G.alu_slice ~bits:4 ();
      G.c432 ();
    ]

let test_roundtrip_preserves_sizes () =
  let net = G.inverter_chain ~depth:3 () in
  Net.set_size net 2 4.25;
  let back = Bf.of_string (Bf.to_string net) in
  let resized =
    Array.to_list (Net.gate_ids back)
    |> List.filter (fun i -> abs_float (Net.size back i -. 4.25) < 1e-9)
  in
  Alcotest.(check int) "one resized gate survives" 1 (List.length resized)

let test_roundtrip_timing_identical () =
  (* The semantic check that matters: same STA results after a
     round-trip. *)
  let tech = Spv_process.Tech.bptm70 in
  let net = G.c432 () in
  let back = Bf.of_string (Bf.to_string net) in
  check_close ~rel:1e-9 "same critical delay"
    (Spv_circuit.Sta.run tech net).Spv_circuit.Sta.delay
    (Spv_circuit.Sta.run tech back).Spv_circuit.Sta.delay;
  check_close ~rel:1e-9 "same area" (Net.area net) (Net.area back)

let expect_failure name text =
  match Bf.of_string text with
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "%s: expected parse failure" name

let test_error_cases () =
  expect_failure "undefined signal" "INPUT(a)\ny = INV(zzz)\nOUTPUT(y)\n";
  expect_failure "unknown cell" "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n";
  expect_failure "duplicate" "INPUT(a)\na = INV(a)\nOUTPUT(a)\n";
  expect_failure "cycle" "INPUT(a)\nx = INV(y)\ny = INV(x)\nOUTPUT(y)\n";
  expect_failure "no outputs" "INPUT(a)\ny = INV(a)\n";
  expect_failure "bad size" "INPUT(a)\ny = INV(a) [size=zero]\nOUTPUT(y)\n";
  expect_failure "arity" "INPUT(a)\ny = XOR(a)\nOUTPUT(y)\n";
  expect_failure "undefined output" "INPUT(a)\ny = INV(a)\nOUTPUT(q)\n"

let expect_error_line name text ~line ~fragment =
  match Bf.of_string_result text with
  | Ok _ -> Alcotest.failf "%s: expected typed parse error" name
  | Error e ->
      Alcotest.(check (option int)) (name ^ ": line number") (Some line) e.Bf.line;
      let contains s sub =
        let n = String.length sub in
        let ok = ref false in
        for i = 0 to String.length s - n do
          if String.sub s i n = sub then ok := true
        done;
        !ok
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: message %S mentions %S" name e.Bf.message fragment)
        true
        (contains e.Bf.message fragment)

let test_duplicate_gate_line_number () =
  (* The reported line must be the SECOND (offending) definition, not
     the first. *)
  expect_error_line "duplicate gate"
    "INPUT(a)\nn1 = INV(a)\nn2 = INV(n1)\nn1 = BUF(a)\nOUTPUT(n2)\n"
    ~line:4 ~fragment:"duplicate";
  expect_error_line "gate shadowing input"
    "INPUT(a)\nINPUT(b)\na = INV(b)\nOUTPUT(a)\n"
    ~line:3 ~fragment:"duplicate";
  expect_error_line "duplicate input"
    "INPUT(a)\nINPUT(a)\ny = INV(a)\nOUTPUT(y)\n"
    ~line:2 ~fragment:"duplicate"

let test_trailing_garbage_rejected () =
  expect_error_line "garbage after definition"
    "INPUT(a)\ny = INV(a) oops\nOUTPUT(y)\n"
    ~line:2 ~fragment:"trailing garbage";
  expect_error_line "garbage after INPUT"
    "INPUT(a) junk\ny = INV(a)\nOUTPUT(y)\n"
    ~line:1 ~fragment:"trailing garbage";
  expect_error_line "garbage after OUTPUT"
    "INPUT(a)\ny = INV(a)\nOUTPUT(y) extra\n"
    ~line:3 ~fragment:"trailing garbage";
  (* Comments after a statement are still fine, and a size annotation
     is not garbage. *)
  (match Bf.of_string_result "INPUT(a) # fine\ny = INV(a) [size=2] # ok\nOUTPUT(y)\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "comment wrongly rejected: %s" e.Bf.message)

let all_cells_netlist () =
  (* One instance of every library cell, in a single netlist. *)
  let module B = Spv_circuit.Builder in
  let module C = Spv_circuit.Cell in
  let b = B.create ~name:"zoo" in
  let i = Array.init 4 (fun k -> B.input b (Printf.sprintf "i%d" k)) in
  List.iter
    (fun kind ->
      let fanin = List.init (C.arity kind) (fun k -> i.(k)) in
      B.output b (B.gate b kind fanin))
    C.all;
  B.finish b

let test_every_cell_roundtrips () =
  let net = all_cells_netlist () in
  Alcotest.(check int) "all cells present"
    (List.length Spv_circuit.Cell.all)
    (Net.n_gates net);
  let back = Bf.of_string (Bf.to_string net) in
  Alcotest.(check bool) "structural roundtrip" true (Bf.roundtrip_equal net back);
  (match
     Spv_circuit.Equivalence.check net back (Spv_stats.Rng.create ~seed:250)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "functional roundtrip failed");
  (* Every cell also times. *)
  let sta = Spv_circuit.Sta.run Spv_process.Tech.bptm70 net in
  Alcotest.(check bool) "positive delay" true (sta.Spv_circuit.Sta.delay > 0.0)

let test_random_logic_roundtrips () =
  List.iter
    (fun seed ->
      let net =
        G.random_logic ~name:"r" ~inputs:8 ~gates:60 ~depth:7 ~seed
      in
      let back = Bf.of_string (Bf.to_string net) in
      match
        Spv_circuit.Equivalence.check net back (Spv_stats.Rng.create ~seed:251)
      with
      | Ok () -> ()
      | Error _ -> Alcotest.failf "seed %d roundtrip failed" seed)
    [ 1; 2; 3 ]

let test_file_io () =
  let net = G.ripple_carry_adder ~bits:3 in
  let path = Filename.temp_file "spv_test" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bf.write_file path net;
      let back = Bf.read_file path in
      Alcotest.(check bool) "file roundtrip" true (Bf.roundtrip_equal net back))

let suite =
  [
    quick "parse basic" test_parse_basic;
    quick "parse functional" test_parse_functional;
    quick "out-of-order statements" test_out_of_order_statements;
    quick "arity suffix resolution" test_arity_suffix_resolution;
    quick "roundtrip generated circuits" test_roundtrip_generated;
    quick "roundtrip sizes" test_roundtrip_preserves_sizes;
    quick "roundtrip timing" test_roundtrip_timing_identical;
    quick "error cases" test_error_cases;
    quick "duplicate gate line numbers" test_duplicate_gate_line_number;
    quick "trailing garbage rejected" test_trailing_garbage_rejected;
    quick "every cell roundtrips" test_every_cell_roundtrips;
    quick "random logic roundtrips" test_random_logic_roundtrips;
    quick "file io" test_file_io;
  ]
