open Helpers
module Errors = Spv_robust.Errors
module Lint = Spv_robust.Lint
module Guard = Spv_robust.Guard
module Checked = Spv_robust.Checked
module M = Spv_stats.Matrix
module G = Spv_stats.Gaussian
module Mc = Spv_stats.Mc

(* ---- typed errors --------------------------------------------------- *)

let test_exit_codes_distinct () =
  let codes =
    List.map Errors.exit_code
      [
        Errors.io ~path:"f" "m";
        Errors.parse "m";
        Errors.lint [];
        Errors.numeric ~where:"w" "m";
        Errors.domain ~param:"p" "m";
        Errors.internal ~where:"w" "m";
      ]
  in
  Alcotest.(check (list int)) "documented codes" [ 2; 3; 4; 5; 6; 7 ] codes;
  List.iter (fun c -> Alcotest.(check bool) "non-zero" true (c <> 0)) codes

let test_error_messages_one_line () =
  let errs =
    [
      Errors.io ~path:"f.bench" "gone";
      Errors.parse ~path:"f.bench" ~line:3 "bad token";
      Errors.lint
        [ Errors.diagnostic ~code:"combinational-loop" ~line:2 "cycle" ];
      Errors.numeric ~where:"clark" "NaN";
      Errors.domain ~param:"rho" "out of range";
      Errors.internal ~where:"cli" "oops";
    ]
  in
  List.iter
    (fun e ->
      let s = Errors.to_string e in
      Alcotest.(check bool) "non-empty" true (String.length s > 0);
      Alcotest.(check bool) "single line" false (String.contains s '\n'))
    errs

(* ---- lint ------------------------------------------------------------ *)

let codes_of diags = List.map (fun d -> d.Errors.code) diags

let lint_text text = Lint.check_bench_text text |> Result.get_ok

let test_lint_loop () =
  let diags = lint_text "INPUT(a)\nx = INV(y)\ny = INV(x)\nOUTPUT(y)\n" in
  Alcotest.(check bool) "loop found" true
    (List.mem "combinational-loop" (codes_of (Lint.errors diags)))

let test_lint_multiple_driver () =
  let diags =
    lint_text "INPUT(a)\nn = INV(a)\nn = BUF(a)\nOUTPUT(n)\n"
  in
  Alcotest.(check bool) "multiple driver" true
    (List.mem "multiple-driver" (codes_of (Lint.errors diags)))

let test_lint_undefined_signal () =
  let diags = lint_text "INPUT(a)\ny = INV(zzz)\nOUTPUT(y)\n" in
  Alcotest.(check bool) "undefined" true
    (List.mem "undefined-signal" (codes_of (Lint.errors diags)))

let test_lint_empty_and_no_outputs () =
  Alcotest.(check bool) "empty" true
    (List.mem "empty-circuit" (codes_of (Lint.errors (lint_text ""))));
  let diags = lint_text "INPUT(a)\ny = INV(a)\n" in
  Alcotest.(check bool) "no outputs" true
    (List.mem "no-outputs" (codes_of (Lint.errors diags)))

let test_lint_zero_fanin () =
  let diags = lint_text "INPUT(a)\ny = AND()\nOUTPUT(y)\n" in
  Alcotest.(check bool) "zero fanin" true
    (List.mem "zero-fanin" (codes_of (Lint.errors diags)))

let test_lint_warnings_only () =
  (* Dangling definition and unused input are warnings, not errors. *)
  let diags =
    lint_text "INPUT(a)\nINPUT(b)\ny = INV(a)\ndead = BUF(a)\nOUTPUT(y)\n"
  in
  Alcotest.(check bool) "no errors" false (Lint.has_errors diags);
  let w = codes_of (Lint.warnings diags) in
  Alcotest.(check bool) "dangling" true (List.mem "dangling-signal" w);
  Alcotest.(check bool) "unused input" true (List.mem "unused-input" w)

let test_lint_line_numbers () =
  let diags = lint_text "INPUT(a)\ny = INV(a)\nz = INV(qq)\nOUTPUT(z)\n" in
  match Lint.errors diags with
  | [ d ] -> Alcotest.(check (option int)) "line" (Some 3) d.Errors.line
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds)

let test_checked_parse_reports_warnings () =
  let warnings = ref [] in
  let net =
    Checked.parse_bench_string
      ~on_warning:(fun w -> warnings := w :: !warnings)
      "INPUT(a)\nINPUT(b)\ny = INV(a)\nOUTPUT(y)\n"
    |> Result.get_ok
  in
  Alcotest.(check int) "gates" 1 (Spv_circuit.Netlist.n_gates net);
  Alcotest.(check bool) "warned" true (!warnings <> [])

(* ---- guards ---------------------------------------------------------- *)

let test_clamp_rho () =
  (match Guard.clamp_rho ~where:"t" 0.7 with
  | Ok (r, clamped) ->
      check_float "unchanged" 0.7 r;
      Alcotest.(check bool) "not clamped" false clamped
  | Error _ -> Alcotest.fail "in-range rho rejected");
  (match Guard.clamp_rho ~where:"t" (1.0 +. 1e-9) with
  | Ok (r, clamped) ->
      check_float "clamped to 1" 1.0 r;
      Alcotest.(check bool) "clamped" true clamped
  | Error _ -> Alcotest.fail "fp overshoot rejected");
  (match Guard.clamp_rho ~where:"t" (-1.0 -. 1e-9) with
  | Ok (r, _) -> check_float "clamped to -1" (-1.0) r
  | Error _ -> Alcotest.fail "fp undershoot rejected");
  Alcotest.(check bool) "NaN rejected" true
    (Result.is_error (Guard.clamp_rho ~where:"t" Float.nan));
  Alcotest.(check bool) "gross violation rejected" true
    (Result.is_error (Guard.clamp_rho ~where:"t" 1.5))

let test_finite_guards () =
  Alcotest.(check bool) "finite ok" true
    (Result.is_ok (Guard.finite ~where:"t" 1.0));
  Alcotest.(check bool) "nan err" true
    (Result.is_error (Guard.finite ~where:"t" Float.nan));
  Alcotest.(check bool) "inf err" true
    (Result.is_error (Guard.finite ~where:"t" Float.infinity));
  Alcotest.(check bool) "array err" true
    (Result.is_error (Guard.finite_array ~where:"t" [| 1.0; Float.nan |]))

let test_psd_repair_identityish () =
  (* A valid correlation matrix must come back untouched. *)
  let c = Spv_stats.Correlation.uniform ~n:4 ~rho:0.4 in
  match Guard.repair_correlation c with
  | Ok (c', report) ->
      Alcotest.(check bool) "not repaired" false report.Guard.repaired;
      check_float "delta" 0.0 report.Guard.max_abs_delta;
      for i = 0 to 3 do
        for j = 0 to 3 do
          check_float "entry" (M.get c i j) (M.get c' i j)
        done
      done
  | Error e -> Alcotest.failf "valid matrix rejected: %s" (Errors.to_string e)

let non_psd =
  (* Eigenvalues of this matrix include a strongly negative one. *)
  [| [| 1.0; 0.9; 0.9 |]; [| 0.9; 1.0; -0.9 |]; [| 0.9; -0.9; 1.0 |] |]

let test_psd_repair_fixes_non_psd () =
  match Guard.repair_correlation (M.of_arrays non_psd) with
  | Error e -> Alcotest.failf "repair failed: %s" (Errors.to_string e)
  | Ok (c, report) ->
      Alcotest.(check bool) "repaired" true report.Guard.repaired;
      Alcotest.(check bool) "input min eig negative" true
        (report.Guard.min_eigenvalue < 0.0);
      Alcotest.(check bool) "perturbation reported" true
        (report.Guard.max_abs_delta > 0.0
        && report.Guard.frobenius_delta >= report.Guard.max_abs_delta);
      Alcotest.(check bool) "valid correlation" true
        (Spv_stats.Correlation.is_valid c);
      (* The repaired matrix must actually be PSD. *)
      let vals, _ = M.sym_eig c in
      Array.iter
        (fun l ->
          Alcotest.(check bool) "eigenvalue non-negative" true (l >= -1e-8))
        vals

let test_psd_repair_rejects_garbage () =
  let bad m = Result.is_error (Guard.repair_correlation (M.of_arrays m)) in
  Alcotest.(check bool) "non-symmetric" true
    (bad [| [| 1.0; 0.5 |]; [| -0.5; 1.0 |] |]);
  Alcotest.(check bool) "nan entry" true
    (bad [| [| 1.0; Float.nan |]; [| Float.nan; 1.0 |] |]);
  Alcotest.(check bool) "bad diagonal" true
    (bad [| [| 2.0; 0.5 |]; [| 0.5; 2.0 |] |]);
  Alcotest.(check bool) "entry out of range" true
    (bad [| [| 1.0; 1.7 |]; [| 1.7; 1.0 |] |])

(* ---- symmetric eigendecomposition ----------------------------------- *)

let test_sym_eig_known () =
  let vals, _ = M.sym_eig (M.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |]) in
  let sorted = Array.copy vals in
  Array.sort compare sorted;
  check_close ~rel:1e-10 "lambda1" 1.0 sorted.(0);
  check_close ~rel:1e-10 "lambda2" 3.0 sorted.(1)

let test_sym_eig_reconstructs () =
  let a =
    M.of_arrays
      [| [| 4.0; 1.0; 0.5 |]; [| 1.0; 3.0; -0.25 |]; [| 0.5; -0.25; 2.0 |] |]
  in
  let vals, v = M.sym_eig a in
  (* A = V diag(vals) V^T, entrywise. *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      let acc = ref 0.0 in
      for k = 0 to 2 do
        acc := !acc +. (M.get v i k *. vals.(k) *. M.get v j k)
      done;
      check_float ~eps:1e-8
        (Printf.sprintf "A[%d,%d]" i j)
        (M.get a i j) !acc
    done
  done

let test_sym_eig_rejects_non_symmetric () =
  check_raises_invalid "non-symmetric" (fun () ->
      ignore (M.sym_eig (M.of_arrays [| [| 1.0; 2.0 |]; [| 0.0; 1.0 |] |])))

(* ---- adaptive Monte Carlo ------------------------------------------- *)

let test_mc_constant_true () =
  let r = Mc.estimate_probability (fun () -> true) in
  check_float "p" 1.0 r.Mc.probability;
  Alcotest.(check bool) "converged" true r.Mc.converged;
  Alcotest.(check bool) "no cap" false r.Mc.hit_cap

let test_mc_constant_false_hits_cap () =
  (* p = 0: the relative-SE criterion can never be met. *)
  let r = Mc.estimate_probability ~max_samples:5000 (fun () -> false) in
  check_float "p" 0.0 r.Mc.probability;
  Alcotest.(check bool) "not converged" false r.Mc.converged;
  Alcotest.(check bool) "cap reported" true r.Mc.hit_cap;
  Alcotest.(check int) "stopped at cap" 5000 r.Mc.samples

let test_mc_coin_converges () =
  let rng = Spv_stats.Rng.create ~seed:11 in
  let r =
    Mc.estimate_probability ~rel_se_target:0.02
      (fun () -> Spv_stats.Rng.float rng < 0.3)
  in
  Alcotest.(check bool) "converged" true r.Mc.converged;
  check_in_range "estimate near 0.3" ~lo:0.25 ~hi:0.35 r.Mc.probability;
  check_in_range "rel se met" ~lo:0.0 ~hi:0.02
    (Mc.rel_std_error ~p:r.Mc.probability ~se:r.Mc.std_error);
  Alcotest.(check bool) "respects floor" true (r.Mc.samples >= 1000)

let test_mc_rejects_bad_budgets () =
  check_raises_invalid "zero cap" (fun () ->
      ignore (Mc.estimate_probability ~max_samples:0 (fun () -> true)));
  check_raises_invalid "zero batch" (fun () ->
      ignore (Mc.estimate_probability ~batch:0 (fun () -> true)));
  check_raises_invalid "nan target" (fun () ->
      ignore (Mc.estimate_probability ~rel_se_target:Float.nan (fun () -> true)))

let test_yield_adaptive_matches_analytic () =
  let stages =
    Array.init 4 (fun _ -> Spv_core.Stage.of_moments ~mu:100.0 ~sigma:5.0 ())
  in
  let p =
    Spv_core.Pipeline.make stages ~corr:(Spv_stats.Correlation.independent ~n:4)
  in
  let rng = Spv_stats.Rng.create ~seed:5 in
  let r =
    Spv_core.Yield.monte_carlo_adaptive ~rel_se_target:0.005 p rng
      ~t_target:110.0
  in
  let exact = Spv_core.Yield.independent_exact p ~t_target:110.0 in
  Alcotest.(check bool) "converged" true r.Mc.converged;
  check_in_range "MC brackets analytic"
    ~lo:(r.Mc.probability -. (5.0 *. r.Mc.std_error))
    ~hi:(r.Mc.probability +. (5.0 *. r.Mc.std_error))
    exact

(* ---- checked statistics --------------------------------------------- *)

let test_kstest_rejects_degenerate_samples () =
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  check_raises_invalid "empty raises" (fun () ->
      ignore (Spv_stats.Kstest.against_gaussian [||] g));
  (match Spv_stats.Kstest.against_gaussian_checked [||] g with
  | Error Spv_stats.Descriptive.Empty_sample -> ()
  | _ -> Alcotest.fail "empty sample not typed");
  match
    Spv_stats.Kstest.against_gaussian_checked [| 0.1; Float.nan; 0.3 |] g
  with
  | Error (Spv_stats.Descriptive.Non_finite_sample 1) -> ()
  | _ -> Alcotest.fail "NaN sample not typed with index"

let test_histogram_rejects_and_counts () =
  (match Spv_stats.Histogram.of_samples_checked [||] with
  | Error Spv_stats.Descriptive.Empty_sample -> ()
  | _ -> Alcotest.fail "empty not typed");
  (match Spv_stats.Histogram.of_samples_checked [| 1.0; Float.infinity |] with
  | Error (Spv_stats.Descriptive.Non_finite_sample 1) -> ()
  | _ -> Alcotest.fail "inf not typed");
  (* Streaming adds: non-finite values are counted, not binned. *)
  let h = Spv_stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Spv_stats.Histogram.add h 0.5;
  Spv_stats.Histogram.add h Float.nan;
  Spv_stats.Histogram.add h Float.neg_infinity;
  Alcotest.(check int) "binned" 1 (Spv_stats.Histogram.total h);
  Alcotest.(check int) "rejected" 2 (Spv_stats.Histogram.rejected h)

let suite =
  [
    quick "exit codes distinct" test_exit_codes_distinct;
    quick "error messages one line" test_error_messages_one_line;
    quick "lint loop" test_lint_loop;
    quick "lint multiple driver" test_lint_multiple_driver;
    quick "lint undefined signal" test_lint_undefined_signal;
    quick "lint empty / no outputs" test_lint_empty_and_no_outputs;
    quick "lint zero fanin" test_lint_zero_fanin;
    quick "lint warnings only" test_lint_warnings_only;
    quick "lint line numbers" test_lint_line_numbers;
    quick "checked parse warns" test_checked_parse_reports_warnings;
    quick "clamp rho" test_clamp_rho;
    quick "finite guards" test_finite_guards;
    quick "psd repair keeps valid" test_psd_repair_identityish;
    quick "psd repair fixes non-psd" test_psd_repair_fixes_non_psd;
    quick "psd repair rejects garbage" test_psd_repair_rejects_garbage;
    quick "sym_eig known" test_sym_eig_known;
    quick "sym_eig reconstructs" test_sym_eig_reconstructs;
    quick "sym_eig non-symmetric" test_sym_eig_rejects_non_symmetric;
    quick "mc constant true" test_mc_constant_true;
    quick "mc constant false caps" test_mc_constant_false_hits_cap;
    quick "mc coin converges" test_mc_coin_converges;
    quick "mc bad budgets" test_mc_rejects_bad_budgets;
    slow "adaptive yield vs analytic" test_yield_adaptive_matches_analytic;
    quick "kstest degenerate samples" test_kstest_rejects_degenerate_samples;
    quick "histogram rejects/counts" test_histogram_rejects_and_counts;
  ]
