open Helpers
module S = Spv_analysis.Sensitivity
module Dom = Spv_analysis.Dominance
module I = Spv_analysis.Interval
module Engine = Spv_engine.Engine
module Net = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Ssta = Spv_circuit.Ssta
module G = Spv_circuit.Generators
module Fuzz = Spv_circuit.Fuzz
module Gd = Spv_process.Gate_delay
module Hook = Spv_sizing.Sens_hook
module Gr = Spv_sizing.Greedy
module Rng = Spv_stats.Rng

let tech = Spv_process.Tech.bptm70
let ff = Spv_process.Flipflop.default tech
let z = Spv_stats.Special.big_phi_inv 0.9457

(* ---- the dual domain -------------------------------------------------- *)

let test_dual_arithmetic () =
  let box = I.make ~lo:2.0 ~hi:3.0 in
  let x = S.Dual.var box in
  (* d(x^2)/dx = 2x over [2, 3] *)
  let sq = S.Dual.mul x x in
  check_float ~eps:1e-12 "x^2 value lo" 4.0 (I.lo (S.Dual.v sq));
  check_float ~eps:1e-12 "x^2 value hi" 9.0 (I.hi (S.Dual.v sq));
  Alcotest.(check bool) "x^2 deriv encloses 2x" true
    (I.lo (S.Dual.d sq) <= 4.0 && I.hi (S.Dual.d sq) >= 6.0);
  (* d(sqrt x)/dx = 1/(2 sqrt x) *)
  let r = S.Dual.sqrt_ x in
  Alcotest.(check bool) "sqrt deriv enclosure" true
    (I.lo (S.Dual.d r) <= 1.0 /. (2.0 *. sqrt 3.0)
    && I.hi (S.Dual.d r) >= 1.0 /. (2.0 *. sqrt 2.0));
  (* constants carry zero derivative through arithmetic *)
  let c = S.Dual.add (S.Dual.const 5.0) (S.Dual.scale (S.Dual.const 2.0) 3.0) in
  check_float ~eps:0.0 "const value" 11.0 (I.lo (S.Dual.v c));
  check_float ~eps:0.0 "const deriv" 0.0 (I.hi (S.Dual.d c));
  (* point boxes reproduce concrete arithmetic exactly *)
  let p = S.Dual.var (I.point 2.5) in
  let e = S.Dual.shift (S.Dual.div (S.Dual.const 7.0) p) 1.25 in
  check_float ~eps:0.0 "point value exact" ((7.0 /. 2.5) +. 1.25)
    (I.lo (S.Dual.v e));
  check_float ~eps:1e-15 "point deriv exact" (-7.0 /. (2.5 *. 2.5))
    (I.lo (S.Dual.d e))

let test_dual_unbounded () =
  let straddle = S.Dual.var (I.make ~lo:(-1.0) ~hi:1.0) in
  (match S.Dual.div (S.Dual.const 1.0) straddle with
  | exception S.Dual.Unbounded _ -> ()
  | _ -> Alcotest.fail "division by a zero-straddling interval must raise");
  match S.Dual.sqrt_ straddle with
  | exception S.Dual.Unbounded _ -> ()
  | _ -> Alcotest.fail "sqrt of a negative-reaching interval must raise"

let test_dual_phi () =
  (* d Phi/dx = phi; at a point box the enclosure must bracket it. *)
  let x = S.Dual.var (I.point 0.7) in
  let p = S.Dual.big_phi x in
  let phi = exp (-0.245) /. sqrt (2.0 *. Float.pi) in
  Alcotest.(check bool) "big_phi deriv brackets phi" true
    (I.lo (S.Dual.d p) <= phi && I.hi (S.Dual.d p) >= phi);
  let q = S.Dual.upper_tail x in
  Alcotest.(check bool) "upper_tail deriv brackets -phi" true
    (I.lo (S.Dual.d q) <= -.phi && I.hi (S.Dual.d q) >= -.phi)

(* ---- central finite differences -------------------------------------- *)

(* Concrete stage moments as the sensitivity pass models them. *)
let concrete_moments ?ff net =
  let a = Ssta.analyse_stage ?ff tech net in
  (a.Ssta.total.Gd.nominal, Gd.total_sigma a.Ssta.total)

let fd_check ?ff ~what net g =
  let x = Net.size net g in
  let h = 0.05 *. x in
  let box = I.make ~lo:(x -. (2.0 *. h)) ~hi:(x +. (2.0 *. h)) in
  let sens = S.stage ?ff tech net ~param:(S.Size g) ~box in
  let at v =
    Net.set_size net g v;
    let m = concrete_moments ?ff net in
    Net.set_size net g x;
    m
  in
  let mu0, sg0 = at x in
  let mu_p, sg_p = at (x +. h) in
  let mu_m, sg_m = at (x -. h) in
  let fd p m = (p -. m) /. (2.0 *. h) in
  let vslack = 1e-9 *. Float.max 1.0 (Float.abs mu0) in
  let dslack v0 = (1e-10 *. (Float.abs v0 +. 1.0) /. h) +. 1e-9 in
  let one name (e : S.enclosure) v0 d =
    if not (I.contains ~slack:vslack e.S.value v0) then
      Alcotest.failf "%s %s: value %.9g outside %s" what name v0
        (I.to_string e.S.value);
    if e.S.certified && not (I.contains ~slack:(dslack v0) e.S.deriv d) then
      Alcotest.failf "%s %s: central FD %.9g escapes %s" what name d
        (I.to_string e.S.deriv)
  in
  one "mu" sens.S.s_mu mu0 (fd mu_p mu_m);
  one "sigma" sens.S.s_sigma sg0 (fd sg_p sg_m);
  sens.S.s_mu.S.certified

let knobs_of net =
  let gids = Net.gate_ids net in
  let n = Array.length gids in
  if n <= 3 then Array.to_list gids
  else [ gids.(0); gids.(n / 3); gids.(n / 2); gids.(n - 1) ]

let test_fd_iscas_pipeline () =
  (* The Table II/III pipeline: every knob's enclosure contains its
     central finite differences, and certification is not vacuous. *)
  let nets = G.iscas_pipeline () in
  let total = ref 0 and certified = ref 0 in
  Array.iteri
    (fun i net ->
      List.iter
        (fun g ->
          incr total;
          if fd_check ~ff ~what:(Printf.sprintf "stage %d gate %d" i g) net g
          then incr certified)
        (knobs_of net))
    nets;
  Alcotest.(check bool)
    (Printf.sprintf "certification non-vacuous (%d/%d)" !certified !total)
    true (!certified > 0)

let test_fd_factor_param () =
  (* The Vth knob: d(nominal)/d(factor) against Sta.run_with_factors. *)
  let net = G.c432 () in
  let g = (Net.gate_ids net).(0) in
  let h = 0.02 in
  let box = I.make ~lo:(1.0 -. (2.0 *. h)) ~hi:(1.0 +. (2.0 *. h)) in
  let sens = S.stage tech net ~param:(S.Factor g) ~box in
  let at f =
    let factors = Array.make (Net.n_nodes net) 1.0 in
    factors.(g) <- f;
    (Sta.run_with_factors tech net ~factors).Sta.delay
  in
  let d0 = at 1.0 in
  let fd = (at (1.0 +. h) -. at (1.0 -. h)) /. (2.0 *. h) in
  let e = sens.S.s_nominal in
  Alcotest.(check bool) "nominal value contained" true
    (I.contains ~slack:(1e-9 *. d0) e.S.value d0);
  if e.S.certified then
    Alcotest.(check bool) "factor FD contained" true
      (I.contains ~slack:1e-6 e.S.deriv fd)

let test_fd_fuzzed_netlists () =
  (* >= 50 fuzzed single-stage netlists, zero FD escapes. *)
  let n_cases = 55 in
  let total = ref 0 and certified = ref 0 in
  for seed = 1 to n_cases do
    let streams = Rng.split (Rng.create ~seed) 2 in
    let config = { Fuzz.default_config with Fuzz.max_gates = 40 } in
    let circuits = Fuzz.generate ~config streams.(0) in
    Array.iter
      (fun net ->
        List.iter
          (fun g ->
            incr total;
            if
              fd_check ~ff
                ~what:(Printf.sprintf "seed %d gate %d" seed g)
                net g
            then incr certified)
          (knobs_of net))
      circuits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "fuzzed certification non-vacuous (%d/%d)" !certified
       !total)
    true (!certified > 0)

let test_fd_yield () =
  (* d(Clark yield)/d(size) through the engine context, against the
     closed-form estimator re-evaluated per stencil point. *)
  let nets = G.iscas_pipeline () in
  let ctx = Engine.Ctx.of_circuits ~ff tech nets in
  let g0 = Engine.Ctx.delay_distribution ctx in
  let t_target =
    Spv_stats.Gaussian.mu g0 +. Spv_stats.Gaussian.sigma g0
  in
  let checked = ref 0 in
  for s = 0 to Array.length nets - 1 do
    let net = Engine.Ctx.netlist ctx s in
    let g = (Net.gate_ids net).(0) in
    let x = Net.size net g in
    let h = 0.05 *. x in
    let box = I.make ~lo:(x -. (2.0 *. h)) ~hi:(x +. (2.0 *. h)) in
    let enc =
      S.ctx_yield ctx ~model:S.Clark ~stage:s ~param:(S.Size g) ~box ~t_target
    in
    let at v =
      Net.set_size net g v;
      let c = Engine.Ctx.refresh_stage ctx s in
      let y =
        (Engine.yield ~method_:Engine.Analytic_clark c ~t_target).Engine.value
      in
      Net.set_size net g x;
      y
    in
    let y0 = at x in
    Alcotest.(check bool)
      (Printf.sprintf "stage %d yield value contained" s)
      true
      (I.contains ~slack:1e-9 enc.S.value y0);
    if enc.S.certified then begin
      incr checked;
      let fd = (at (x +. h) -. at (x -. h)) /. (2.0 *. h) in
      Alcotest.(check bool)
        (Printf.sprintf "stage %d yield FD contained" s)
        true
        (I.contains ~slack:1e-8 enc.S.deriv fd)
    end
  done;
  Alcotest.(check bool) "at least one yield knob certified" true (!checked > 0)

(* ---- parameters and certificates ------------------------------------- *)

let test_param_validation () =
  let net = G.c432 () in
  let g = (Net.gate_ids net).(0) in
  check_raises_invalid "box missing current size" (fun () ->
      S.stage tech net ~param:(S.Size g) ~box:(I.make ~lo:50.0 ~hi:60.0));
  check_raises_invalid "not a gate" (fun () ->
      S.stage tech net ~param:(S.Size 0) ~box:(I.make ~lo:0.5 ~hi:2.0));
  check_raises_invalid "factor box missing 1.0" (fun () ->
      S.stage tech net ~param:(S.Factor g) ~box:(I.make ~lo:2.0 ~hi:3.0))

let test_monotone_sign () =
  let certified value deriv =
    { S.value; deriv; certified = true }
  in
  let pos = certified (I.point 1.0) (I.make ~lo:0.5 ~hi:2.0) in
  let neg = certified (I.point 1.0) (I.make ~lo:(-2.0) ~hi:(-0.5)) in
  let mixed = certified (I.point 1.0) (I.make ~lo:(-1.0) ~hi:1.0) in
  Alcotest.(check bool) "increasing" true (S.monotone_sign pos = Some S.Increasing);
  Alcotest.(check bool) "decreasing" true (S.monotone_sign neg = Some S.Decreasing);
  Alcotest.(check bool) "mixed" true (S.monotone_sign mixed = None)

(* ---- cache invalidation ----------------------------------------------- *)

let test_cache_refresh_stage () =
  let nets = [| G.c432 (); G.c1908 () |] in
  let ctx = Engine.Ctx.of_circuits ~ff tech nets in
  let cache = S.Cache.create () in
  let net = Engine.Ctx.netlist ctx 0 in
  let g = (Net.gate_ids net).(0) in
  let x = Net.size net g in
  let box = I.make ~lo:(0.9 *. x) ~hi:(1.1 *. x) in
  let s1 = S.ctx_stage ~cache ctx ~stage:0 ~param:(S.Size g) ~box in
  let s2 = S.ctx_stage ~cache ctx ~stage:0 ~param:(S.Size g) ~box in
  Alcotest.(check int) "one miss" 1 (S.Cache.misses cache);
  Alcotest.(check int) "one hit" 1 (S.Cache.hits cache);
  Alcotest.(check bool) "memoised result identical" true (s1 = s2);
  (* A different box is a different key. *)
  let box' = I.make ~lo:(0.8 *. x) ~hi:(1.2 *. x) in
  ignore (S.ctx_stage ~cache ctx ~stage:0 ~param:(S.Size g) ~box:box');
  Alcotest.(check int) "box keyed" 2 (S.Cache.misses cache);
  (* refresh_stage bumps the revision: stage 0 entries invalidate,
     stage 1 entries survive. *)
  let net1 = Engine.Ctx.netlist ctx 1 in
  let g1 = (Net.gate_ids net1).(0) in
  let box1 =
    I.make ~lo:(0.9 *. Net.size net1 g1) ~hi:(1.1 *. Net.size net1 g1)
  in
  ignore (S.ctx_stage ~cache ctx ~stage:1 ~param:(S.Size g1) ~box:box1);
  Alcotest.(check int) "stage 1 primed" 3 (S.Cache.misses cache);
  let ctx' = Engine.Ctx.refresh_stage ctx 0 in
  ignore (S.ctx_stage ~cache ctx' ~stage:0 ~param:(S.Size g) ~box);
  Alcotest.(check int) "refresh invalidates stage 0" 4 (S.Cache.misses cache);
  ignore (S.ctx_stage ~cache ctx' ~stage:1 ~param:(S.Size g1) ~box:box1);
  Alcotest.(check int) "stage 1 entry survives" 2 (S.Cache.hits cache)

let test_cache_refresh_block () =
  let nets = [| G.c432 (); G.c1908 () |] in
  let ctx = Engine.Ctx.of_circuits ~mode:Engine.Hierarchical ~ff tech nets in
  let cache = S.Cache.create () in
  let net = Engine.Ctx.netlist ctx 0 in
  let g = (Net.gate_ids net).(0) in
  let x = Net.size net g in
  let box = I.make ~lo:(0.9 *. x) ~hi:(1.1 *. x) in
  ignore (S.ctx_stage ~cache ctx ~stage:0 ~param:(S.Size g) ~box);
  ignore (S.ctx_stage ~cache ctx ~stage:0 ~param:(S.Size g) ~box);
  Alcotest.(check int) "primed" 1 (S.Cache.misses cache);
  let ctx' = Engine.Ctx.refresh_block ctx ~stage:0 ~block:0 in
  ignore (S.ctx_stage ~cache ctx' ~stage:0 ~param:(S.Size g) ~box);
  Alcotest.(check int) "refresh_block invalidates" 2 (S.Cache.misses cache)

(* ---- sizer pruning ---------------------------------------------------- *)

let with_pruning enabled f =
  Dom.install_sizing_prune ();
  let was = Hook.is_enabled () in
  Hook.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Hook.set_enabled was) f

let greedy_fixture () =
  let net = G.inverter_chain ~depth:12 () in
  let module L = Spv_sizing.Lagrangian in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  (net, fast +. (0.5 *. (slow -. fast)))

let test_greedy_prune_identity () =
  (* Pruning must never change the sizer's result — byte-identical
     reports and final sizes, strictly fewer trial evaluations. *)
  let net, t_target = greedy_fixture () in
  let r_off, evals_off =
    with_pruning false (fun () ->
        Hook.reset_stats ();
        let r = Gr.size_stage ~ff tech (Net.copy net) ~t_target ~z in
        (r, Hook.stats.Hook.moves_evaluated))
  in
  let net_on = Net.copy net in
  let r_on, evals_on, pruned =
    with_pruning true (fun () ->
        Hook.reset_stats ();
        (* The debug cross-check re-runs the full move set and raises
           on any divergence. *)
        Hook.set_debug_cross_check true;
        Fun.protect
          ~finally:(fun () -> Hook.set_debug_cross_check false)
          (fun () ->
            let r = Gr.size_stage ~ff tech net_on ~t_target ~z in
            (r, Hook.stats.Hook.moves_evaluated, Hook.stats.Hook.moves_pruned)))
  in
  Alcotest.(check bool) "reports byte-identical" true (r_off = r_on);
  Alcotest.(check bool) "pruning saves work" true
    (pruned > 0 && evals_on + pruned >= evals_off && evals_on < evals_off)

let test_greedy_prune_identity_iscas () =
  (* On a reconvergent ISCAS stage most enclosures decertify; pruning
     must stay result-transparent regardless of how much it prunes. *)
  let net = G.c432 () in
  let module L = Spv_sizing.Lagrangian in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  let t_target = fast +. (0.6 *. (slow -. fast)) in
  let r_off =
    with_pruning false (fun () ->
        Gr.size_stage ~ff tech (Net.copy net) ~t_target ~z)
  in
  let r_on =
    with_pruning true (fun () ->
        Hook.set_debug_cross_check true;
        Fun.protect
          ~finally:(fun () -> Hook.set_debug_cross_check false)
          (fun () -> Gr.size_stage ~ff tech (Net.copy net) ~t_target ~z))
  in
  Alcotest.(check bool) "reports byte-identical" true (r_off = r_on)

let test_global_opt_skip_identity () =
  (* The certified stage skip must leave ensure_yield's result
     byte-identical. *)
  let module Go = Spv_sizing.Global_opt in
  let nets () = [| G.c432 (); G.c1908 () |] in
  let module L = Spv_sizing.Lagrangian in
  let z2 =
    Spv_stats.Special.big_phi_inv
      (Spv_core.Yield.per_stage_yield_target ~yield:0.8 ~n_stages:2)
  in
  let probe = G.c432 () in
  let fast = L.minimum_achievable_delay ~ff tech probe ~z:z2 in
  let t_target = fast *. 1.05 in
  let run enabled =
    with_pruning enabled (fun () ->
        Hook.reset_stats ();
        let r =
          Go.ensure_yield ~ff tech (nets ()) ~t_target ~yield_target:0.8
        in
        (r, Hook.stats.Hook.probes_skipped))
  in
  let r_off, _ = run false in
  let r_on, _skipped = run true in
  Alcotest.(check bool) "yields identical" true
    (r_off.Go.pipeline_yield = r_on.Go.pipeline_yield);
  Alcotest.(check bool) "targets identical" true
    (r_off.Go.stage_targets = r_on.Go.stage_targets);
  Alcotest.(check bool) "areas identical" true
    (r_off.Go.stage_areas = r_on.Go.stage_areas)

let test_dominance_prune_direct () =
  (* Exercise the pruner directly: pruned moves must all fail the
     sizer's acceptance or lose to a kept move, checked concretely. *)
  let net, _ = greedy_fixture () in
  let env =
    { Hook.pe_tech = tech; pe_net = net; pe_output_load = 4.0;
      pe_ff = Some ff; pe_z = z }
  in
  let moves =
    List.map
      (fun g ->
        let s = Net.size net g in
        {
          Hook.mv_node = g;
          mv_from = s;
          mv_to = s *. 1.3;
          mv_darea = s *. 0.3;
        })
      (Array.to_list (Net.gate_ids net))
  in
  let pruned = Dom.prune_moves env moves in
  let stat () = Spv_sizing.Lagrangian.statistical_delay ~ff tech net ~z in
  let current = stat () in
  let gains =
    List.map
      (fun mv ->
        Net.set_size net mv.Hook.mv_node mv.Hook.mv_to;
        let trial = stat () in
        Net.set_size net mv.Hook.mv_node mv.Hook.mv_from;
        (trial < current, (current -. trial) /. Float.max mv.Hook.mv_darea 1e-9))
      moves
  in
  let best_kept =
    List.fold_left
      (fun acc (k, (ok, gain)) ->
        if pruned.(k) || not ok then acc else Float.max acc gain)
      neg_infinity
      (List.mapi (fun k g -> (k, g)) gains)
  in
  List.iteri
    (fun k (ok, gain) ->
      if pruned.(k) && ok && gain > best_kept then
        Alcotest.failf "pruned move %d would have won (gain %.6g > %.6g)" k
          gain best_kept)
    gains

let suite =
  [
    quick "dual arithmetic" test_dual_arithmetic;
    quick "dual unbounded" test_dual_unbounded;
    quick "dual phi" test_dual_phi;
    quick "param validation" test_param_validation;
    quick "monotone sign" test_monotone_sign;
    slow "FD containment: iscas pipeline" test_fd_iscas_pipeline;
    quick "FD containment: factor knob" test_fd_factor_param;
    slow "FD containment: 55 fuzzed netlists" test_fd_fuzzed_netlists;
    slow "FD containment: clark yield" test_fd_yield;
    quick "cache: refresh_stage" test_cache_refresh_stage;
    quick "cache: refresh_block" test_cache_refresh_block;
    quick "greedy prune identity (chain)" test_greedy_prune_identity;
    slow "greedy prune identity (c432)" test_greedy_prune_identity_iscas;
    slow "global opt skip identity" test_global_opt_skip_identity;
    quick "dominance pruner direct" test_dominance_prune_direct;
  ]
