(* The fault-injection harness: every case in Spv_robust.Inject's
   corpus must either return a typed error or a finite documented
   fallback — never an uncaught exception, never a NaN.  Each corpus
   case becomes its own alcotest case so a regression names the exact
   malformed input that broke. *)

module Inject = Spv_robust.Inject

let test_of_case c () =
  let outcome = Inject.run_case c in
  match Inject.verdict c outcome with
  | Inject.Pass -> ()
  | Inject.Fail msg -> Alcotest.failf "%s: %s" c.Inject.name msg

let test_corpus_size () =
  (* The acceptance bar: a systematic corpus, not a token one. *)
  let n = List.length (Inject.corpus ()) in
  if n < 25 then Alcotest.failf "corpus has only %d cases (need >= 25)" n

let test_no_case_escapes () =
  (* Belt and braces over the per-case tests: one sweep asserting the
     global invariant directly. *)
  let results = Inject.run_all () in
  match Inject.failures results with
  | [] -> ()
  | (c, _, msg) :: _ as fails ->
      Alcotest.failf "%d corpus failure(s); first: %s: %s"
        (List.length fails) c.Inject.name msg

let suite =
  Helpers.quick "corpus size >= 25" test_corpus_size
  :: Helpers.quick "no case escapes" test_no_case_escapes
  :: List.map
       (fun c -> Helpers.quick c.Inject.name (test_of_case c))
       (Inject.corpus ())
