(* Command-line front end: run the paper's experiments individually or
   interrogate the library (yield queries, STA, sizing) without writing
   OCaml.

   Every command funnels its failures through Spv_robust.Errors, so
   each failure class gets a one-line stderr message and a distinct
   exit code (Io 2, Parse 3, Lint 4, Numeric 5, Domain 6, Internal 7,
   Certificate refuted 8); cmdliner keeps its own 124 for command-line
   syntax errors. *)

open Cmdliner
module Errors = Spv_robust.Errors
module Checked = Spv_robust.Checked
module Engine = Spv_engine.Engine

let ( let* ) = Result.bind

let warn msg = Printf.eprintf "warning: %s\n%!" msg

(* Terminal adapter: print the typed error on stderr and exit with its
   documented code.  Commands return (unit, Errors.t) result. *)
let handle = function
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "spv_cli: %s\n%!" (Errors.to_string e);
      exit (Errors.exit_code e)

(* ---- shared circuit lookup ---------------------------------------- *)

(* The builtin table lives in Spv_workload.Grid so grid files and the
   CLI resolve the same names; Checked.lookup_circuit adds the .bench
   path fallback and typed errors. *)
let lookup_circuit name = Checked.lookup_circuit ~on_warning:warn name

let circuit_arg =
  let doc =
    "Benchmark circuit name (c432, c1908, c2670, c3540, rca8, alu8, dec4, \
     chain10) or a path to a .bench netlist file."
  in
  Arg.(required & opt (some string) None & info [ "c"; "circuit" ] ~doc)

(* ---- experiment command ------------------------------------------- *)

let experiments =
  [
    ("fig2", Spv_experiments.Fig2.run);
    ("fig3", Spv_experiments.Fig3.run);
    ("fig4", Spv_experiments.Fig4.run);
    ("fig5", Spv_experiments.Fig5.run);
    ("table1", Spv_experiments.Table1.run);
    ("fig7", Spv_experiments.Fig7_8.run);
    ( "table2",
      fun () ->
        Spv_experiments.Table2_3.print_table
          (Spv_experiments.Table2_3.compute Spv_experiments.Table2_3.Ensure_yield) );
    ( "table3",
      fun () ->
        Spv_experiments.Table2_3.print_table
          (Spv_experiments.Table2_3.compute Spv_experiments.Table2_3.Minimise_area) );
    ("ablations", Spv_experiments.Ablations.run);
  ]

let experiment_cmd =
  let id =
    let doc = "Experiment id (fig2 fig3 fig4 fig5 table1 fig7 table2 table3 ablations)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id =
    handle
      (match List.assoc_opt id experiments with
      | Some f -> Checked.protect ~where:("experiment " ^ id) f
      | None ->
          Error
            (Errors.domain ~param:"ID"
               (Printf.sprintf "unknown experiment %S (known: %s)" id
                  (String.concat ", " (List.map fst experiments)))))
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's tables/figures.")
    Term.(const run $ id)

(* ---- lint command -------------------------------------------------- *)

let lint_cmd =
  let file =
    let doc = "Path to the .bench netlist file to check." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let werror =
    let doc =
      "Treat warnings as errors: exit with the Lint code (4) when any \
       diagnostic fires, not only on hard errors."
    in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let run path werror =
    handle
      (let* diags = Checked.lint_bench_file path in
       List.iter
         (fun d ->
           Printf.printf "%s: %s\n" path (Errors.diagnostic_to_string d))
         diags;
       let errs =
         List.filter (fun d -> d.Errors.severity = Errors.Err) diags
       in
       match (errs, diags) with
       | [], [] ->
           Printf.printf "%s: no diagnostics\n" path;
           Ok ()
       | [], warnings when not werror ->
           Printf.printf "%s: %d warning(s), no errors\n" path
             (List.length warnings);
           Ok ()
       | [], warnings ->
           (* --werror promotes the warnings themselves into the
              Lint_error so the exit-4 contract names what fired. *)
           Error (Errors.lint ~path warnings)
       | errs, _ -> Error (Errors.lint ~path errs))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Check a .bench netlist for structural defects (loops, undriven \
          wires, multiple drivers, ...) without running any analysis.")
    Term.(const run $ file $ werror)

(* ---- yield / mc commands ------------------------------------------ *)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo sampling.  Defaults to the SPV_JOBS \
     environment variable, else the machine's recommended domain count.  \
     Estimates are a pure function of the seed and shard count, so this \
     setting changes wall-clock time only, never the result."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)

let seed_arg =
  let doc = "Monte-Carlo RNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let yield_cmd =
  let mus =
    let doc = "Stage mean delays in ps (repeatable)." in
    Arg.(non_empty & opt_all float [] & info [ "mu" ] ~doc)
  in
  let sigmas =
    let doc = "Stage delay sigmas in ps (repeatable, same count as --mu)." in
    Arg.(value & opt_all float [] & info [ "sigma" ] ~doc)
  in
  let rho =
    let doc = "Uniform stage-delay correlation coefficient." in
    Arg.(value & opt float 0.0 & info [ "rho" ] ~doc)
  in
  let target =
    let doc = "Clock-period target in ps." in
    Arg.(required & opt (some float) None & info [ "t"; "target" ] ~doc)
  in
  let run mus sigmas rho target jobs seed =
    handle
      (let mus = Array.of_list mus and sigmas = Array.of_list sigmas in
       let* p =
         Checked.pipeline_of_moments ~on_warning:warn ~mus ~sigmas ~rho ()
       in
       let* ctx = Checked.engine_ctx_of_pipeline p in
       let tp = Engine.Ctx.delay_distribution ctx in
       Printf.printf "pipeline delay ~ N(%.2f, %.2f) ps\n"
         (Spv_stats.Gaussian.mu tp) (Spv_stats.Gaussian.sigma tp);
       Printf.printf "yield(T = %.2f ps):\n" target;
       let* clark =
         Checked.engine_yield ~method_:Engine.Analytic_clark ctx
           ~t_target:target
       in
       Printf.printf "  Clark Gaussian (eq. 9):     %.2f%%\n"
         (100.0 *. clark.Engine.value);
       let* () =
         if rho = 0.0 then
           let* exact =
             Checked.engine_yield ~method_:Engine.Exact_independent ctx
               ~t_target:target
           in
           Printf.printf "  independent exact (eq. 8):  %.2f%%\n"
             (100.0 *. exact.Engine.value);
           Ok ()
         else Ok ()
       in
       let* r = Checked.engine_yield ?jobs ~seed ctx ~t_target:target in
       Printf.printf "  Monte-Carlo:                %.2f%%  (%d samples, se \
                      %.4f, %s)\n"
         (100.0 *. r.Engine.value)
         r.Engine.n_samples r.Engine.std_error
         (Engine.stop_reason_name r.Engine.stop);
       Ok ())
  in
  Cmd.v
    (Cmd.info "yield"
       ~doc:"Pipeline yield from per-stage (mu, sigma) and a uniform rho.")
    Term.(const run $ mus $ sigmas $ rho $ target $ jobs_arg $ seed_arg)

let mc_cmd =
  let mus =
    let doc =
      "Stage mean delays in ps (repeatable).  Mutually exclusive with \
       --circuit."
    in
    Arg.(value & opt_all float [] & info [ "mu" ] ~doc)
  in
  let circuits_arg =
    let doc =
      "Pipeline stage circuit (repeatable; builtin name or .bench path).  \
       Mutually exclusive with --mu/--sigma."
    in
    Arg.(value & opt_all string [] & info [ "c"; "circuit" ] ~doc)
  in
  let hier =
    let doc =
      "Evaluate the circuit pipeline through the hierarchical (block-macro) \
       model; the estimate then reports its flat-vs-hierarchical error \
       bound.  Requires --circuit."
    in
    Arg.(value & flag & info [ "hier" ] ~doc)
  in
  let sigmas =
    let doc = "Stage delay sigmas in ps (repeatable, same count as --mu)." in
    Arg.(value & opt_all float [] & info [ "sigma" ] ~doc)
  in
  let rho =
    let doc = "Uniform stage-delay correlation coefficient." in
    Arg.(value & opt float 0.0 & info [ "rho" ] ~doc)
  in
  let target =
    let doc = "Clock-period target in ps.  Required unless --smoke." in
    Arg.(value & opt (some float) None & info [ "t"; "target" ] ~doc)
  in
  let method_arg =
    let doc =
      "Estimator: clark, independent, mc, adaptive, importance or quadrature."
    in
    Arg.(value & opt string "adaptive" & info [ "m"; "method" ] ~doc)
  in
  let n =
    let doc = "Trial count for the fixed-n methods (mc, importance)." in
    Arg.(value & opt int 10_000 & info [ "n"; "samples" ] ~doc)
  in
  let shards =
    let doc =
      "Independent RNG substreams.  Part of the estimate's identity: \
       changing it changes the drawn trials (unlike --jobs)."
    in
    Arg.(value & opt int 8 & info [ "shards" ] ~doc)
  in
  let proposal_arg =
    let doc =
      "Importance-sampling proposal family: $(b,legacy) (capped mean shift \
       toward the target) or $(b,cone) (failure-cone-guided mixture from \
       the static analyzer; falls back to legacy when no cone dominates \
       and to plain MC for body targets)."
    in
    Arg.(value & opt string "legacy" & info [ "proposal" ] ~doc)
  in
  let smoke =
    let doc =
      "Self-check on a built-in fixture: estimate the same tail loss with \
       adaptive MC and cone-guided importance sampling, assert agreement \
       within the reported confidence intervals and that the cone proposal \
       was actually selected, and print a one-line summary.  Ignores the \
       model arguments."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  (* The --smoke gate: a moments pipeline whose spread stage means give
     the cone analyzer a dominant stage, with the target close enough
     in that adaptive MC still resolves the loss.  The two estimators
     must agree within z * (se_mc + se_imp). *)
  let run_smoke seed =
    let mus = [| 100.0; 96.0; 92.0; 88.0 |]
    and sigmas = [| 5.0; 5.0; 5.0; 5.0 |] in
    let t_target = 115.0 in
    let* p =
      Checked.pipeline_of_moments ~on_warning:warn ~mus ~sigmas ~rho:0.2 ()
    in
    let* ctx = Checked.engine_ctx_of_pipeline p in
    let* mc =
      Checked.engine_yield ~method_:Engine.Adaptive_mc ~seed
        ~max_samples:400_000 ctx ~t_target
    in
    let* imp =
      Checked.engine_yield ~method_:Engine.Importance
        ~proposal:Engine.Cone_guided ~seed ~n:20_000 ctx ~t_target
    in
    let* () =
      match imp.Engine.proposal with
      | Some (Engine.Prop_cone _) -> Ok ()
      | used ->
          Error
            (Errors.numeric ~where:"mc --smoke"
               (Printf.sprintf
                  "cone-guided run used proposal %S (no dominant cone on \
                   the fixture?)"
                  (match used with
                  | Some u -> Engine.proposal_used_name u
                  | None -> "none")))
    in
    let gap = Float.abs (mc.Engine.value -. imp.Engine.value) in
    let z = 5.0 in
    let allowance =
      (z *. (mc.Engine.std_error +. imp.Engine.std_error)) +. 1e-9
    in
    if gap > allowance then
      Error
        (Errors.numeric ~where:"mc --smoke"
           (Printf.sprintf
              "cone-guided importance yield %.9g vs adaptive MC %.9g: gap \
               %.3g exceeds %g sigma allowance %.3g"
              imp.Engine.value mc.Engine.value gap z allowance))
    else begin
      let ess = match imp.Engine.ess with Some e -> e | None -> 0.0 in
      Printf.printf
        "mc smoke OK: cone-guided importance agrees with adaptive MC \
         (yield %.6f vs %.6f, gap %.3g <= %.3g, ess %.0f, seed %d)\n"
        imp.Engine.value mc.Engine.value gap allowance ess seed;
      Ok ()
    end
  in
  let run circuits hier mus sigmas rho target method_name n shards
      proposal_name smoke jobs seed =
    handle
      (if smoke then run_smoke seed
       else
       let* method_ =
         match Engine.method_of_string method_name with
         | Some m -> Ok m
         | None ->
             Error
               (Errors.domain ~param:"--method"
                  (Printf.sprintf "unknown method %S (known: %s)" method_name
                     (String.concat ", "
                        (List.map Engine.method_name Engine.all_methods))))
       in
       let* proposal =
         match Engine.proposal_of_string proposal_name with
         | Some p -> Ok p
         | None ->
             Error
               (Errors.domain ~param:"--proposal"
                  (Printf.sprintf "unknown proposal %S (known: legacy, cone)"
                     proposal_name))
       in
       let* target =
         match target with
         | Some t -> Ok t
         | None ->
             Error
               (Errors.domain ~param:"--target" "required unless --smoke")
       in
       let* ctx =
         match (circuits, mus) with
         | [], [] ->
             Error
               (Errors.domain ~param:"--mu"
                  "give --mu/--sigma moments, or at least one --circuit")
         | _ :: _, _ :: _ ->
             Error
               (Errors.domain ~param:"--circuit"
                  "give either --circuit or --mu/--sigma, not both")
         | [], _ ->
             if hier then
               Error
                 (Errors.domain ~param:"--hier"
                    "requires --circuit (moment pipelines have no netlists \
                     to decompose)")
             else
               let mus = Array.of_list mus and sigmas = Array.of_list sigmas in
               let* p =
                 Checked.pipeline_of_moments ~on_warning:warn ~mus ~sigmas
                   ~rho ()
               in
               Checked.engine_ctx_of_pipeline p
         | names, [] ->
             let* nets =
               List.fold_left
                 (fun acc name ->
                   let* acc = acc in
                   let* net = lookup_circuit name in
                   Ok (net :: acc))
                 (Ok []) names
             in
             let mode = if hier then Engine.Hierarchical else Engine.Flat in
             let tech = Spv_process.Tech.bptm70 in
             let ff = Spv_process.Flipflop.default tech in
             Checked.engine_ctx_of_circuits ~mode ~ff tech
               (Array.of_list (List.rev nets))
       in
       let* e =
         Checked.engine_yield ~method_ ~proposal ?jobs ~shards ~seed ~n ctx
           ~t_target:target
       in
       Format.printf "%a@." Engine.pp_estimate e;
       Ok ())
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Yield estimate through the unified engine: any estimator from the \
          taxonomy, with deterministic domain-parallel sampling.")
    Term.(
      const run $ circuits_arg $ hier $ mus $ sigmas $ rho $ target
      $ method_arg $ n $ shards $ proposal_arg $ smoke $ jobs_arg
      $ seed_arg)

(* ---- sta command --------------------------------------------------- *)

let sta_cmd =
  let run name =
    handle
      (let* net = lookup_circuit name in
       let tech = Spv_process.Tech.bptm70 in
       let* sta =
         Checked.protect ~where:"STA" (fun () -> Spv_circuit.Sta.run tech net)
       in
       Format.printf "%a@." Spv_circuit.Netlist.pp_stats net;
       Printf.printf "logic depth: %d\n" (Spv_circuit.Topo.depth net);
       Printf.printf "critical delay: %.1f ps (path of %d gates)\n"
         sta.Spv_circuit.Sta.delay
         (List.length sta.Spv_circuit.Sta.critical_path);
       let ff = Spv_process.Flipflop.default tech in
       let* g = Checked.ssta_stage ~ff tech net in
       Printf.printf "stage delay with FF: N(%.1f, %.2f) ps (sigma/mu %.2f%%)\n"
         (Spv_stats.Gaussian.mu g) (Spv_stats.Gaussian.sigma g)
         (100.0 *. Spv_stats.Gaussian.variability g);
       Ok ())
  in
  Cmd.v
    (Cmd.info "sta" ~doc:"Deterministic and statistical timing of a circuit.")
    Term.(const run $ circuit_arg)

(* ---- size command --------------------------------------------------- *)

let size_cmd =
  let target =
    let doc = "Statistical delay target (mu + z sigma) in ps." in
    Arg.(required & opt (some float) None & info [ "t"; "target" ] ~doc)
  in
  let stage_yield =
    let doc = "Stage yield budget in (0.5, 1) defining z." in
    Arg.(value & opt float 0.9457 & info [ "stage-yield" ] ~doc)
  in
  let sizer =
    let doc =
      "Sizer: $(b,lagrangian) (default) or $(b,greedy) (TILOS-style; its \
       candidate moves go through the certified sensitivity pruner)."
    in
    Arg.(
      value
      & opt (enum [ ("lagrangian", `Lagrangian); ("greedy", `Greedy) ])
          `Lagrangian
      & info [ "sizer" ] ~doc)
  in
  let run name target stage_yield sizer =
    handle
      (let* net = lookup_circuit name in
       if not (stage_yield > 0.5 && stage_yield < 1.0) then
         Error
           (Errors.domain ~param:"--stage-yield" "must lie in (0.5, 1)")
       else
         let tech = Spv_process.Tech.bptm70 in
         let ff = Spv_process.Flipflop.default tech in
         let z = Spv_stats.Special.big_phi_inv stage_yield in
         let before = Spv_circuit.Netlist.area net in
         Spv_sizing.Sens_hook.reset_stats ();
         let* () =
           match sizer with
           | `Lagrangian ->
               let* r = Checked.size_stage ~ff tech net ~t_target:target ~z in
               Printf.printf
                 "sized %s: area %.1f -> %.1f, stat delay %.1f ps (target \
                  %.1f), %d iterations, converged: %b\n"
                 name before r.Spv_sizing.Lagrangian.area
                 r.Spv_sizing.Lagrangian.stat_delay target
                 r.Spv_sizing.Lagrangian.iterations
                 r.Spv_sizing.Lagrangian.converged;
               Ok ()
           | `Greedy ->
               let* r =
                 Checked.protect ~where:"greedy sizing" (fun () ->
                     Spv_sizing.Greedy.size_stage ~ff tech net ~t_target:target
                       ~z)
               in
               Printf.printf
                 "sized %s (greedy): area %.1f -> %.1f, stat delay %.1f ps \
                  (target %.1f), %d move(s), converged: %b\n"
                 name before r.Spv_sizing.Greedy.area
                 r.Spv_sizing.Greedy.stat_delay target
                 r.Spv_sizing.Greedy.moves r.Spv_sizing.Greedy.converged;
               Ok ()
         in
         let st = Spv_sizing.Sens_hook.stats in
         Printf.printf "sensitivity pruning: %d move(s) evaluated, %d pruned\n"
           st.Spv_sizing.Sens_hook.moves_evaluated
           st.Spv_sizing.Sens_hook.moves_pruned;
         Ok ())
  in
  Cmd.v
    (Cmd.info "size"
       ~doc:"Minimum-area gate sizing under a statistical delay constraint.")
    Term.(const run $ circuit_arg $ target $ stage_yield $ sizer)

(* ---- power command --------------------------------------------------- *)

let power_cmd =
  let run name =
    handle
      (let* net = lookup_circuit name in
       let tech = Spv_process.Tech.bptm70 in
       let* p =
         Checked.protect ~where:"power analysis" (fun () ->
             Spv_circuit.Power.analyse tech net)
       in
       Printf.printf "dynamic (switched-cap proxy): %.1f\n"
         p.Spv_circuit.Power.dynamic;
       Printf.printf "leakage nominal:              %.1f\n"
         p.Spv_circuit.Power.leakage_nominal;
       Printf.printf "leakage mean under variation: %.1f  (tax %.2fx)\n"
         p.Spv_circuit.Power.leakage_mean
         (p.Spv_circuit.Power.leakage_mean
         /. p.Spv_circuit.Power.leakage_nominal);
       Printf.printf "leakage sigma:                %.1f\n"
         p.Spv_circuit.Power.leakage_sigma;
       Ok ())
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:"Dynamic and statistical leakage power of a circuit.")
    Term.(const run $ circuit_arg)

(* ---- export command --------------------------------------------------- *)

let export_cmd =
  let out =
    let doc = "Output path; '-' for stdout (default)." in
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc)
  in
  let run name out =
    handle
      (let* net = lookup_circuit name in
       if out = "-" then begin
         print_string (Spv_circuit.Bench_format.to_string net);
         Ok ()
       end
       else
         Checked.protect ~where:out (fun () ->
             Spv_circuit.Bench_format.write_file out net))
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a circuit in .bench text format.")
    Term.(const run $ circuit_arg $ out)

(* ---- criticality command ---------------------------------------------- *)

let criticality_cmd =
  let mus =
    let doc = "Stage mean delays in ps (repeatable)." in
    Arg.(non_empty & opt_all float [] & info [ "mu" ] ~doc)
  in
  let sigmas =
    let doc = "Stage delay sigmas in ps (repeatable)." in
    Arg.(non_empty & opt_all float [] & info [ "sigma" ] ~doc)
  in
  let run mus sigmas =
    handle
      (let mus = Array.of_list mus and sigmas = Array.of_list sigmas in
       let* p = Checked.pipeline_of_moments ~mus ~sigmas ~rho:0.0 () in
       let* probs =
         Checked.protect ~where:"criticality" (fun () ->
             Spv_core.Stage_criticality.probabilities_analytic_independent p)
       in
       let n = Array.length mus in
       Array.iteri
         (fun i pr -> Printf.printf "stage %d: P(critical) = %.4f\n" i pr)
         probs;
       Printf.printf "entropy: %.3f nats (max for %d stages: %.3f)\n"
         (Spv_core.Stage_criticality.entropy probs)
         n
         (log (float_of_int n));
       Ok ())
  in
  Cmd.v
    (Cmd.info "criticality"
       ~doc:"Per-stage probability of being the pipeline's slowest stage.")
    Term.(const run $ mus $ sigmas)

(* ---- curve command ----------------------------------------------------- *)

let curve_cmd =
  let points =
    let doc = "Number of sizing runs along the curve." in
    Arg.(value & opt int 9 & info [ "n"; "points" ] ~doc)
  in
  let stage_yield =
    let doc = "Stage yield budget in (0.5, 1) defining z." in
    Arg.(value & opt float 0.9457 & info [ "stage-yield" ] ~doc)
  in
  let run name points stage_yield =
    handle
      (let* net = lookup_circuit name in
       if not (stage_yield > 0.5 && stage_yield < 1.0) then
         Error (Errors.domain ~param:"--stage-yield" "must lie in (0.5, 1)")
       else
         let tech = Spv_process.Tech.bptm70 in
         let ff = Spv_process.Flipflop.default tech in
         let z = Spv_stats.Special.big_phi_inv stage_yield in
         let* pts =
           Checked.protect ~where:"area-delay curve" (fun () ->
               Spv_sizing.Area_delay.curve_points ~ff ~n_points:points tech
                 net ~z)
         in
         Printf.printf "%12s %12s\n" "delay(ps)" "area";
         Array.iter
           (fun p ->
             Printf.printf "%12.1f %12.1f\n" p.Spv_core.Balance.delay
               p.Spv_core.Balance.area)
           pts;
         Ok ())
  in
  Cmd.v
    (Cmd.info "curve" ~doc:"Area-vs-delay trade-off curve of a circuit.")
    Term.(const run $ circuit_arg $ points $ stage_yield)

(* ---- report command --------------------------------------------------- *)

let report_cmd =
  let k =
    let doc = "Number of paths to report." in
    Arg.(value & opt int 5 & info [ "k"; "paths" ] ~doc)
  in
  let target =
    let doc = "Optional delay target (ps) to annotate per-path yield." in
    Arg.(value & opt (some float) None & info [ "t"; "target" ] ~doc)
  in
  let run name k target =
    handle
      (let* net = lookup_circuit name in
       let* text =
         Checked.protect ~where:"timing report" (fun () ->
             Spv_circuit.Report.render ~k ?t_target:target
               Spv_process.Tech.bptm70 net)
       in
       print_string text;
       Ok ())
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"STA-style timing report: k slowest paths with statistics.")
    Term.(const run $ circuit_arg $ k $ target)

(* ---- hold command ------------------------------------------------------ *)

let hold_cmd =
  let hold =
    let doc = "Receiving latch hold requirement in ps." in
    Arg.(value & opt float 40.0 & info [ "hold" ] ~doc)
  in
  let run name hold =
    handle
      (let* net = lookup_circuit name in
       let tech = Spv_process.Tech.bptm70 in
       let ff = Spv_process.Flipflop.default tech in
       let* short =
         Checked.protect ~where:"short-path analysis" (fun () ->
             Spv_core.Hold.short_path_delay tech net)
       in
       Printf.printf "shortest path: %.1f ps nominal (sigma %.2f)\n"
         short.Spv_process.Gate_delay.nominal
         (Spv_process.Gate_delay.total_sigma short);
       let* y =
         Checked.protect ~where:"hold yield" (fun () ->
             Spv_core.Hold.hold_yield_stage tech ~ff ~hold_ps:hold net)
       in
       Printf.printf "hold yield at %.1f ps requirement: %.2f%%\n" hold
         (100.0 *. y);
       Ok ())
  in
  Cmd.v
    (Cmd.info "hold" ~doc:"Early-mode race (hold-time) yield of a stage.")
    Term.(const run $ circuit_arg $ hold)

(* ---- fmax command -------------------------------------------------------- *)

let fmax_cmd =
  let mus =
    let doc = "Stage mean delays in ps (repeatable)." in
    Arg.(non_empty & opt_all float [] & info [ "mu" ] ~doc)
  in
  let sigmas =
    let doc = "Stage delay sigmas in ps (repeatable)." in
    Arg.(non_empty & opt_all float [] & info [ "sigma" ] ~doc)
  in
  let rho =
    let doc = "Uniform stage correlation." in
    Arg.(value & opt float 0.0 & info [ "rho" ] ~doc)
  in
  let run mus sigmas rho =
    handle
      (let mus = Array.of_list mus and sigmas = Array.of_list sigmas in
       let* p =
         Checked.pipeline_of_moments ~on_warning:warn ~mus ~sigmas ~rho ()
       in
       let* mean, std =
         Checked.protect ~where:"FMAX" (fun () -> Spv_core.Fmax.mean_std p)
       in
       Printf.printf "FMAX mean %.4f GHz, sigma %.4f GHz\n" (1000.0 *. mean)
         (1000.0 *. std);
       List.iter
         (fun q ->
           Printf.printf "  P%02.0f: %.4f GHz\n" (100.0 *. q)
             (1000.0 *. Spv_core.Fmax.quantile p ~p:q))
         [ 0.05; 0.25; 0.5; 0.75; 0.95 ];
       Ok ())
  in
  Cmd.v
    (Cmd.info "fmax" ~doc:"Maximum-frequency distribution of a pipeline.")
    Term.(const run $ mus $ sigmas $ rho)

(* ---- abb command --------------------------------------------------------- *)

let abb_cmd =
  let stages =
    let doc = "Number of inverter-chain stages." in
    Arg.(value & opt int 8 & info [ "stages" ] ~doc)
  in
  let depth =
    let doc = "Logic depth per stage." in
    Arg.(value & opt int 10 & info [ "depth" ] ~doc)
  in
  let yield =
    let doc = "Pre-ABB yield operating point in (0,1)." in
    Arg.(value & opt float 0.7 & info [ "yield" ] ~doc)
  in
  let range =
    let doc = "Body-bias delay correction range (e.g. 0.1 = +-10%)." in
    Arg.(value & opt float 0.1 & info [ "range" ] ~doc)
  in
  let run stages depth yield range =
    handle
      (if not (yield > 0.0 && yield < 1.0) then
         Error (Errors.domain ~param:"--yield" "outside (0,1)")
       else if range < 0.0 then
         Error (Errors.domain ~param:"--range" "negative")
       else
         Checked.protect ~where:"ABB" (fun () ->
             let tech = Spv_process.Tech.bptm70 in
             let ff = Spv_process.Flipflop.default tech in
             let nets =
               Spv_circuit.Generators.inverter_chain_pipeline ~stages ~depth ()
             in
             let p = Spv_core.Pipeline.of_circuits ~ff tech nets in
             let t_target = Spv_core.Yield.target_delay_for_yield p ~yield in
             let policy = { Spv_core.Adaptive.range } in
             Printf.printf
               "T = %.1f ps: yield %.1f%% -> %.1f%% with +-%.0f%% ABB \
                (mean leakage x%.2f)\n"
               t_target (100.0 *. yield)
               (100.0 *. Spv_core.Adaptive.yield_with_abb ~policy p ~t_target)
               (100.0 *. range)
               (Spv_core.Adaptive.leakage_overhead ~policy tech p)))
  in
  Cmd.v
    (Cmd.info "abb"
       ~doc:"Adaptive body-bias yield recovery on an inverter-chain pipeline.")
    Term.(const run $ stages $ depth $ yield $ range)

(* ---- vth command --------------------------------------------------------- *)

let vth_cmd =
  let slack =
    let doc = "Timing slack factor over the all-low-Vth stat delay." in
    Arg.(value & opt float 1.05 & info [ "slack" ] ~doc)
  in
  let run name slack =
    handle
      (let* net = lookup_circuit name in
       if slack < 1.0 then
         Error (Errors.domain ~param:"--slack" "must be >= 1.0")
       else
         Checked.protect ~where:"dual-Vth optimisation" (fun () ->
             let tech = Spv_process.Tech.bptm70 in
             let ff = Spv_process.Flipflop.default tech in
             let z = Spv_stats.Special.big_phi_inv 0.95 in
             let a0 =
               Spv_sizing.Multi_vth.all_low net ~delay_penalty:1.15
                 ~vth_offset:0.08
             in
             let d0 = Spv_sizing.Multi_vth.stat_delay ~ff tech net a0 ~z in
             let r =
               Spv_sizing.Multi_vth.optimise ~ff tech net
                 ~t_target:(slack *. d0) ~z
             in
             Printf.printf
               "dual-Vth at %.0f%% slack: %d/%d gates high-Vth, leakage %.1f \
                -> %.1f (-%.0f%%), stat delay %.1f ps (budget %.1f)\n"
               (100.0 *. (slack -. 1.0))
               r.Spv_sizing.Multi_vth.swapped
               (Spv_circuit.Netlist.n_gates net)
               r.Spv_sizing.Multi_vth.leakage_before
               r.Spv_sizing.Multi_vth.leakage_after
               (100.0
               *. (1.0
                  -. r.Spv_sizing.Multi_vth.leakage_after
                     /. r.Spv_sizing.Multi_vth.leakage_before))
               r.Spv_sizing.Multi_vth.stat_delay_after (slack *. d0)))
  in
  Cmd.v
    (Cmd.info "vth"
       ~doc:"Criticality-guided dual-Vth assignment for leakage recovery.")
    Term.(const run $ circuit_arg $ slack)

(* ---- analyze command ------------------------------------------------- *)

let analyze_cmd =
  let circuits_arg =
    let doc =
      "Pipeline stage circuit (repeatable; builtin name or .bench path).  \
       Mutually exclusive with --mu/--sigma."
    in
    Arg.(value & opt_all string [] & info [ "c"; "circuit" ] ~doc)
  in
  let mus =
    let doc = "Stage mean delays in ps (repeatable; moments mode)." in
    Arg.(value & opt_all float [] & info [ "mu" ] ~doc)
  in
  let sigmas =
    let doc = "Stage delay sigmas in ps (repeatable, same count as --mu)." in
    Arg.(value & opt_all float [] & info [ "sigma" ] ~doc)
  in
  let rho =
    let doc = "Uniform stage correlation (moments mode)." in
    Arg.(value & opt float 0.0 & info [ "rho" ] ~doc)
  in
  let kappa =
    let doc =
      "Half-width of the bounded-variation box in sigmas: every bound holds \
       for worlds within +-k sigma per component."
    in
    Arg.(value & opt float 6.0 & info [ "k" ] ~doc)
  in
  let target =
    let doc =
      "Optional clock-period target in ps: also checks the closed-form \
       yield estimators against the Fréchet bounds."
    in
    Arg.(value & opt (some float) None & info [ "t"; "target" ] ~doc)
  in
  let hier =
    let doc =
      "Add the hierarchical pass: decompose each stage into block macros \
       and report the macro model's gap to the flat reference (per-stage \
       block counts and moment gaps, pipeline-level bound)."
    in
    Arg.(value & flag & info [ "hier" ] ~doc)
  in
  let json =
    let doc = "Emit the report as JSON instead of text (same as --format json)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let format_arg =
    let doc =
      "Report format: $(b,text) or $(b,json).  JSON documents carry a \
       top-level schema_version field."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let run circuits mus sigmas rho kappa target hier json format =
    handle
      (let* ctx =
         match (circuits, mus) with
         | [], [] ->
             Error
               (Errors.domain ~param:"--circuit"
                  "give at least one --circuit, or --mu/--sigma moments")
         | _ :: _, _ :: _ ->
             Error
               (Errors.domain ~param:"--circuit"
                  "give either --circuit or --mu/--sigma, not both")
         | [], _ ->
             let mus = Array.of_list mus and sigmas = Array.of_list sigmas in
             let* p =
               Checked.pipeline_of_moments ~on_warning:warn ~mus ~sigmas ~rho
                 ()
             in
             Checked.engine_ctx_of_pipeline p
         | names, [] ->
             let* nets =
               List.fold_left
                 (fun acc name ->
                   let* acc = acc in
                   let* net = lookup_circuit name in
                   Ok (net :: acc))
                 (Ok []) names
             in
             let tech = Spv_process.Tech.bptm70 in
             let ff = Spv_process.Flipflop.default tech in
             Checked.engine_ctx_of_circuits ~ff tech
               (Array.of_list (List.rev nets))
       in
       let* r = Checked.analyze ~k:kappa ?t_target:target ~hier ctx in
       let report = r.Spv_analysis.Analyze.report in
       if json || format = `Json then
         print_string (Spv_analysis.Report.to_json report)
       else begin
         print_string (Spv_analysis.Report.to_text report);
         let b = r.Spv_analysis.Analyze.bounds in
         Printf.printf "pipeline delay bound (k=%g): %s ps\n"
           b.Spv_analysis.Bounds.k
           (Spv_analysis.Interval.to_string b.Spv_analysis.Bounds.delay);
         let a = r.Spv_analysis.Analyze.affine in
         Printf.printf
           "affine delay enclosure:      %s ps (%.0f%% of interval width, \
            escape < %.2g)\n"
           (Spv_analysis.Interval.to_string a.Spv_analysis.Affine_sta.delay)
           (100.0 *. a.Spv_analysis.Affine_sta.delay_ratio)
           a.Spv_analysis.Affine_sta.escape;
         (match r.Spv_analysis.Analyze.criticality with
         | None -> ()
         | Some cs ->
             Array.iteri
               (fun i c ->
                 Printf.printf
                   "stage %d: %d/%d gates possibly critical (%.0f%% prunable)\n"
                   i c.Spv_analysis.Static_criticality.n_active_gates
                   c.Spv_analysis.Static_criticality.n_gates
                   (100.0 *. Spv_analysis.Static_criticality.prunable_fraction c))
               cs);
         (let co = r.Spv_analysis.Analyze.cones in
          let module Cones = Spv_analysis.Cones in
          Printf.printf
            "failure cones: %d stage(s) analysed, %d cone(s), %d dominant \
             (crit lower >= %g)\n"
            (Array.length co.Cones.co_stages)
            (List.length co.Cones.co_cones)
            (List.length (Cones.dominant_cones co))
            co.Cones.co_threshold;
          match co.Cones.co_slack with
          | None -> ()
          | Some s ->
              Printf.printf
                "statistical slack:           %.2f ps nominal (sigma %.2f)\n"
                (Spv_analysis.Affine.center s) (Spv_analysis.Affine.sigma s));
         (let sv = r.Spv_analysis.Analyze.sensitivity in
          let module D = Spv_analysis.Dominance in
          if sv.D.gate_level then
            Printf.printf
              "sensitivity: %d size knob(s), %d certified, %d monotone\n"
              (List.length sv.D.certs)
              (List.length
                 (List.filter
                    (fun c -> c.D.gc_mu.Spv_analysis.Sensitivity.certified)
                    sv.D.certs))
              (List.length
                 (List.filter
                    (fun c ->
                      Spv_analysis.Sensitivity.monotone_sign c.D.gc_mu <> None)
                    sv.D.certs)));
         Printf.printf "%d finding(s): %d error(s), %d warning(s)\n"
           (List.length report.Spv_analysis.Report.findings)
           (Spv_analysis.Report.count report Spv_analysis.Report.Error)
           (Spv_analysis.Report.count report Spv_analysis.Report.Warn)
       end;
       (* Error findings surface after the report is printed, with the
          documented Lint exit code. *)
       match Checked.analysis_errors r with
       | None -> Ok ()
       | Some e -> Error e)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis of a pipeline: guaranteed interval delay bounds, \
          correlation-aware affine enclosures, reconvergent-fanout and \
          correlation-risk diagnostics, static criticality/prunability, \
          failure-cone criticality probabilities with statistical slack, \
          certified sensitivity enclosures (derivatives of stage moments \
          and yield in gate sizes over the design box), and \
          Fréchet/affine-envelope checks of the engine's closed-form \
          yield estimators.  Error findings exit with the lint code after \
          the report is printed.")
    Term.(
      const run $ circuits_arg $ mus $ sigmas $ rho $ kappa $ target $ hier
      $ json $ format_arg)

(* ---- certify command ------------------------------------------------- *)

let certify_cmd =
  let solution =
    let doc =
      "Path to a sizing-solution file ($(b,t_target <ps>), $(b,yield <p>), \
       $(b,stage <i> <mu> <sigma>) lines; '#' comments).  Mutually \
       exclusive with --mu/--sigma."
    in
    Arg.(value & opt (some string) None & info [ "s"; "solution" ] ~doc)
  in
  let mus =
    let doc = "Achieved stage mean delays in ps (repeatable)." in
    Arg.(value & opt_all float [] & info [ "mu" ] ~doc)
  in
  let sigmas =
    let doc = "Achieved stage delay sigmas in ps (repeatable)." in
    Arg.(value & opt_all float [] & info [ "sigma" ] ~doc)
  in
  let target =
    let doc = "Clock-period target in ps (required with --mu)." in
    Arg.(value & opt (some float) None & info [ "t"; "target" ] ~doc)
  in
  let yield =
    let doc = "Pipeline yield target in (0.5, 1) (with --mu)." in
    Arg.(value & opt float 0.9 & info [ "yield" ] ~doc)
  in
  let nonneg =
    let doc =
      "Assume nonnegative stage correlations, enabling the Slepian prove \
       path (the independence product becomes a valid lower bound)."
    in
    Arg.(value & flag & info [ "assume-nonneg-corr" ] ~doc)
  in
  let json =
    let doc = "Emit the findings as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run solution mus sigmas target yield nonneg json =
    handle
      (let* cert =
         match (solution, mus) with
         | None, [] ->
             Error
               (Errors.domain ~param:"--solution"
                  "give a --solution file, or --mu/--sigma moments with \
                   --target")
         | Some _, _ :: _ ->
             Error
               (Errors.domain ~param:"--solution"
                  "give either --solution or --mu/--sigma, not both")
         | Some path, [] ->
             Checked.certify_solution_file ~nonneg_correlation:nonneg path
         | None, _ :: _ ->
             if List.length mus <> List.length sigmas then
               Error
                 (Errors.domain ~param:"--sigma"
                    (Printf.sprintf "%d sigmas for %d means"
                       (List.length sigmas) (List.length mus)))
             else
               let* t =
                 match target with
                 | Some t -> Ok t
                 | None ->
                     Error
                       (Errors.domain ~param:"--target"
                          "required in --mu/--sigma mode")
               in
               let points =
                 Array.of_list
                   (List.map2
                      (fun mu sigma -> { Spv_core.Design_space.mu; sigma })
                      mus sigmas)
               in
               Checked.certify_points ~nonneg_correlation:nonneg ~t_target:t
                 ~yield points
       in
       let report =
         Spv_analysis.Report.sorted
           (Spv_analysis.Report.of_findings
              (Spv_analysis.Certify.findings cert))
       in
       if json then print_string (Spv_analysis.Report.to_json report)
       else begin
         print_string (Spv_analysis.Report.to_text report);
         Printf.printf
           "certificate %s: yield in [%.6f, %.6f], product %.6f, target %.6f \
            at T = %g ps\n"
           (Spv_analysis.Certify.status_name cert.Spv_analysis.Certify.status)
           cert.Spv_analysis.Certify.frechet_lo
           cert.Spv_analysis.Certify.min_yield
           cert.Spv_analysis.Certify.product_yield
           cert.Spv_analysis.Certify.yield cert.Spv_analysis.Certify.t_target
       end;
       (* A refuted certificate exits 8 after the findings are printed. *)
       match Checked.certificate_error cert with
       | None -> Ok ()
       | Some e -> Error e)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Static sizing certificate: prove or refute that achieved stage \
          delay moments reach a pipeline yield target (the paper's eq. 10-13 \
          design space), without sampling.  A refuted certificate exits \
          with code 8 and a structured counterexample finding.")
    Term.(const run $ solution $ mus $ sigmas $ target $ yield $ nonneg $ json)

(* ---- sweep command -------------------------------------------------- *)

let sweep_cmd =
  let module Grid = Spv_workload.Grid in
  let module Sweep = Spv_workload.Sweep in
  let grid_file =
    let doc =
      "Path to the scenario-grid file ($(b,circuit)/$(b,stages)/$(b,targets)/\
       $(b,method)/$(b,inter_vth_mv)/... directives; see the README).  \
       Required unless --smoke."
    in
    Arg.(value & opt (some string) None & info [ "g"; "grid" ] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,jsonl) (one schema_version-stamped JSON object \
       per scenario) or $(b,text)."
    in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("text", `Text) ]) `Jsonl
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let smoke =
    let doc =
      "Self-check on the built-in smoke grid: runs it at --jobs 1, 2 and 4, \
       verifies the JSONL outputs are bit-identical and schema-valid, and \
       prints a one-line summary instead of the rows.  With --hier the \
       sweep additionally runs flat, and every hierarchical row is \
       asserted to agree with its flat counterpart within the row's \
       reported hier_bound (plus sampling noise for Monte-Carlo rows)."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let hier =
    let doc =
      "Evaluate circuit scenarios through the hierarchical (block-macro) \
       model with one macro table shared across the whole sweep; rows then \
       carry hier_bound and non-zero macro cache counters."
    in
    Arg.(value & flag & info [ "hier" ] ~doc)
  in
  let proposal_arg =
    let doc =
      "Importance-sampling proposal family for $(b,importance) scenarios: \
       $(b,legacy) or $(b,cone) (failure-cone-guided; see $(b,spv mc))."
    in
    Arg.(value & opt string "legacy" & info [ "proposal" ] ~doc)
  in
  (* The --smoke gate: determinism really is "same bytes for any
     --jobs", so compare the serialised JSONL verbatim. *)
  let required_keys =
    [
      "\"schema_version\":"; "\"scenario\":"; "\"source\":"; "\"process\":";
      "\"method\":"; "\"t_target\":"; "\"yield\":"; "\"std_error\":";
      "\"n_samples\":"; "\"stop\":"; "\"loss\":"; "\"hier_bound\":";
      "\"macro_hits\":"; "\"macro_misses\":"; "\"ess\":"; "\"proposal\":";
    ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let check_schema jsonl n_expected =
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
    in
    if List.length lines <> n_expected then
      Error
        (Errors.numeric ~where:"sweep --smoke"
           (Printf.sprintf "expected %d JSONL rows, got %d" n_expected
              (List.length lines)))
    else
      let bad =
        List.find_opt
          (fun l -> List.exists (fun k -> not (contains l k)) required_keys)
          lines
      in
      match bad with
      | None -> Ok ()
      | Some l ->
          Error
            (Errors.numeric ~where:"sweep --smoke"
               (Printf.sprintf "row missing a required key: %s" l))
  in
  (* With --hier every row must agree with its flat counterpart within
     the row's own reported bound: exactly for closed forms (the bound
     IS the gap), plus the usual z * se allowance when the row sampled
     the macro model's MVN. *)
  let check_hier_agreement (flat : Sweep.result) (hier : Sweep.result) =
    let z = 5.0 in
    Array.iteri
      (fun i (h : Sweep.row) ->
        let f = flat.Sweep.rows.(i) in
        let fe = f.Sweep.estimate and he = h.Sweep.estimate in
        let bound =
          match he.Engine.hier_bound with Some b -> b | None -> 0.0
        in
        let allowance =
          match he.Engine.stop with
          | Engine.Closed_form -> 1e-12
          | _ ->
              (z *. (fe.Engine.std_error +. he.Engine.std_error)) +. 0.01
        in
        let gap = Float.abs (fe.Engine.value -. he.Engine.value) in
        if gap > bound +. allowance then
          raise
            (Failure
               (Printf.sprintf
                  "scenario %d (%s/%s %s T=%g): hier yield %.9g vs flat \
                   %.9g gap %.3g exceeds bound %.3g + allowance %.3g"
                  h.Sweep.scenario.Sweep.index h.Sweep.scenario.Sweep.source
                  h.Sweep.scenario.Sweep.process
                  (Engine.method_name h.Sweep.scenario.Sweep.method_)
                  h.Sweep.scenario.Sweep.t_target he.Engine.value
                  fe.Engine.value gap bound allowance)))
      hier.Sweep.rows
  in
  let run_smoke ~hier seed =
    let grid = Grid.smoke () in
    let n = Grid.n_scenarios grid in
    let mode = if hier then Engine.Hierarchical else Engine.Flat in
    let* r1 = Checked.sweep_run ~mode ~jobs:1 ~seed grid in
    let* r2 = Checked.sweep_run ~mode ~jobs:2 ~seed grid in
    let* r4 = Checked.sweep_run ~mode ~jobs:4 ~seed grid in
    let j1 = Sweep.to_jsonl r1
    and j2 = Sweep.to_jsonl r2
    and j4 = Sweep.to_jsonl r4 in
    let* () = check_schema j1 n in
    if j1 <> j2 || j1 <> j4 then
      Error
        (Errors.numeric ~where:"sweep --smoke"
           "JSONL output differs across --jobs 1/2/4 at a fixed seed")
    else
      let* () =
        if not hier then Ok ()
        else
          let* flat = Checked.sweep_run ~jobs:1 ~seed grid in
          Checked.protect ~where:"sweep --smoke --hier" (fun () ->
              check_hier_agreement flat r1)
      in
      Printf.printf
        "sweep smoke OK: %d scenarios, %d contexts%s, bit-identical across \
         --jobs 1/2/4 (seed %d)\n"
        n r1.Sweep.n_contexts
        (if hier then " (hierarchical, flat agreement within bounds)" else "")
        seed;
      Ok ()
  in
  let print_text (r : Sweep.result) =
    Array.iter
      (fun (row : Sweep.row) ->
        let s = row.Sweep.scenario in
        let e = row.Sweep.estimate in
        Printf.printf
          "[%d] %s/%s %s T=%g: yield %.6f (se %.3g, n=%d, %s), loss %.3g\n"
          s.Sweep.index s.Sweep.source s.Sweep.process
          (Engine.method_name s.Sweep.method_)
          s.Sweep.t_target e.Engine.value e.Engine.std_error
          e.Engine.n_samples
          (Engine.stop_reason_name e.Engine.stop)
          row.Sweep.loss)
      r.Sweep.rows;
    Printf.printf "%d scenario(s), %d context(s) built\n"
      (Array.length r.Sweep.rows) r.Sweep.n_contexts
  in
  let run grid_file format smoke hier proposal_name jobs seed =
    handle
      (let* proposal =
         match Engine.proposal_of_string proposal_name with
         | Some p -> Ok p
         | None ->
             Error
               (Errors.domain ~param:"--proposal"
                  (Printf.sprintf "unknown proposal %S (known: legacy, cone)"
                     proposal_name))
       in
       if smoke then run_smoke ~hier seed
       else
         match grid_file with
         | None ->
             Error
               (Errors.domain ~param:"--grid" "required unless --smoke is set")
         | Some path ->
             let* grid = Checked.sweep_grid_of_file ~on_warning:warn path in
             let mode = if hier then Engine.Hierarchical else Engine.Flat in
             let* r = Checked.sweep_run ~mode ~proposal ?jobs ~seed grid in
             (match format with
             | `Jsonl -> print_string (Sweep.to_jsonl r)
             | `Text -> print_text r);
             Ok ())
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Batched scenario sweep: evaluate a declarative grid (sources x \
          process overrides x estimators x clock targets) with one shared \
          engine context per (source, process) pair, streaming one JSONL \
          row per scenario.  Results are bit-identical for any --jobs at a \
          fixed seed.")
    Term.(
      const run $ grid_file $ format_arg $ smoke $ hier $ proposal_arg
      $ jobs_arg $ seed_arg)

(* ---- serve command -------------------------------------------------- *)

let serve_cmd =
  let module Serve = Spv_workload.Serve in
  let socket_arg =
    let doc =
      "Listen on a Unix-domain socket at $(docv) (serving connections \
       sequentially, cache shared across clients) instead of reading \
       requests from stdin."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let capacity_arg =
    let doc = "Context-cache capacity (LRU entries)." in
    Arg.(value & opt int 32 & info [ "capacity" ] ~doc)
  in
  let max_conns_arg =
    let doc =
      "With --socket: exit after serving this many connections (default: \
       serve forever)."
    in
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let smoke_arg =
    let doc =
      "One-shot self-check: feed a fixed three-request transcript (two \
       valid requests sharing contexts, one malformed) through two fresh \
       daemons and assert byte-identical responses, sweep-schema rows \
       independent of --jobs/workers, warm-cache hits on the second \
       request, and a structured error row for the malformed line."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let required_row_keys =
    [
      "\"kind\":\"row\""; "\"row\":{\"schema_version\":3"; "\"scenario\":";
      "\"source\":"; "\"process\":"; "\"method\":"; "\"t_target\":";
      "\"yield\":"; "\"std_error\":"; "\"n_samples\":"; "\"stop\":";
      "\"loss\":"; "\"hier_bound\":"; "\"macro_hits\":"; "\"macro_misses\":";
      "\"ess\":"; "\"proposal\":";
    ]
  in
  let smoke_grid =
    "stages 100,6 100,6 95,5\n\
     rho 0.3\n\
     circuit chain10\n\
     inter_vth_mv 60\n\
     targets 300:400:4\n\
     method clark,mc\n\
     samples 2000\n\
     shards 4\n"
  in
  (* 3 groups (moments nominal + chain10 x {nominal, vth60mv}), 2
     methods x 4 targets each. *)
  let smoke_groups = 3 in
  let smoke_rows = smoke_groups * 2 * 4 in
  let run_smoke () =
    let transcript () =
      let d = Serve.create () in
      let lines =
        [
          Serve.request_line ~request_id:"q1" ~seed:7 ~jobs:2 ~grid:smoke_grid
            ();
          Serve.request_line ~request_id:"q2" ~seed:7 ~jobs:4 ~workers:2
            ~grid:smoke_grid ();
          (* deliberately truncated JSON *)
          "{\"schema_version\":1,\"request_id\":\"q3\",\"grid\":";
        ]
      in
      List.concat_map (Serve.handle_line d) lines
    in
    let fail msg = Error (Errors.numeric ~where:"serve --smoke" msg) in
    let* t1 = Checked.protect ~where:"serve --smoke" transcript in
    let* t2 = Checked.protect ~where:"serve --smoke" transcript in
    if t1 <> t2 then
      fail "response transcript differs between two fresh daemons"
    else
      let rows_of rid =
        List.filter_map
          (fun l ->
            if
              contains l "\"kind\":\"row\""
              && contains l (Printf.sprintf "\"request_id\":\"%s\"" rid)
            then
              (* strip the wrapper down to the embedded sweep row *)
              match String.index_opt l '{' with
              | Some _ ->
                  let marker = "\"row\":" in
                  let rec find i =
                    if i + String.length marker > String.length l then None
                    else if String.sub l i (String.length marker) = marker
                    then Some (String.sub l (i + String.length marker)
                                 (String.length l - i - String.length marker - 1))
                    else find (i + 1)
                  in
                  find 0
              | None -> None
            else None)
          t1
      in
      let rows1 = rows_of "q1" and rows2 = rows_of "q2" in
      let done_of rid =
        List.find_opt
          (fun l ->
            contains l "\"kind\":\"done\""
            && contains l (Printf.sprintf "\"request_id\":\"%s\"" rid))
          t1
      in
      let bad_row =
        List.find_opt
          (fun l -> List.exists (fun k -> not (contains l k)) required_row_keys)
          (List.filter (fun l -> contains l "\"kind\":\"row\"") t1)
      in
      if List.length rows1 <> smoke_rows then
        fail
          (Printf.sprintf "expected %d rows for q1, got %d" smoke_rows
             (List.length rows1))
      else if rows1 <> rows2 then
        fail "rows differ between --jobs 2/workers 1 and --jobs 4/workers 2"
      else
        match bad_row with
        | Some l -> fail (Printf.sprintf "row missing a required key: %s" l)
        | None -> (
            match (done_of "q1", done_of "q2") with
            | Some d1, Some d2
              when contains d1
                     (Printf.sprintf "\"cache_misses\":%d" smoke_groups)
                   && contains d1 "\"cache_hits\":0"
                   && contains d2
                        (Printf.sprintf "\"cache_hits\":%d" smoke_groups) -> (
                let err =
                  List.find_opt (fun l -> contains l "\"kind\":\"error\"") t1
                in
                match err with
                | Some e
                  when contains e "\"request_id\":null"
                       && contains e "\"status\":\"parse_error\""
                       && contains e "\"code\":3" ->
                    Printf.printf
                      "serve smoke OK: %d rows, %d contexts, warm-cache \
                       hits, byte-identical across two daemons and across \
                       jobs/workers\n"
                      smoke_rows smoke_groups;
                    Ok ()
                | Some e -> fail ("malformed-request error row wrong: " ^ e)
                | None -> fail "no error row for the malformed request")
            | Some _, Some _ -> fail "done rows lack expected cache counters"
            | _ -> fail "missing done row(s)")
  in
  let run socket capacity max_conns smoke =
    handle
      (if smoke then run_smoke ()
       else
         match socket with
         | Some path ->
             Checked.protect ~where:"serve" (fun () ->
                 let d = Serve.create ~capacity () in
                 Serve.serve_socket ?max_conns d ~path)
         | None ->
             Checked.protect ~where:"serve" (fun () ->
                 let d = Serve.create ~capacity () in
                 Serve.serve_channels d stdin stdout))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Evaluation daemon: read schema-versioned JSONL sweep requests \
          (grid + seed + jobs/workers + optional deadline_ms) from stdin or \
          a Unix socket and stream back sweep rows, a done summary with \
          LRU context-cache counters per request, and structured error \
          rows mapped onto the documented exit-code taxonomy.  Replay is \
          byte-exact: responses never depend on jobs, workers or cache \
          state.")
    Term.(const run $ socket_arg $ capacity_arg $ max_conns_arg $ smoke_arg)

(* ---- fuzz command --------------------------------------------------- *)

let fuzz_cmd =
  let module Oracle = Spv_robust.Oracle in
  let module Fuzz_run = Spv_robust.Fuzz_run in
  let trials_arg =
    let doc = "Number of fuzz trials (seed-derived cases)." in
    Arg.(value & opt int 50 & info [ "trials" ] ~doc)
  in
  let max_gates_arg =
    let doc = "Per-stage gate cap of the generator." in
    Arg.(value & opt int 80 & info [ "max-gates" ] ~doc)
  in
  let oracle_arg =
    let doc =
      "Comma-separated invariant subset to check (agreement, envelope, \
       containment, nesting, certificate, replay, hier, deriv, escape).  \
       Default: all."
    in
    Arg.(value & opt (some string) None & info [ "oracle" ] ~docv:"LIST" ~doc)
  in
  let shrink_arg =
    let doc = "Delta-debug shrink every violation before filing/reporting." in
    Arg.(value & opt bool true & info [ "shrink" ] ~doc)
  in
  let corpus_arg =
    let doc =
      "Directory to file shrunk violations into as self-contained .repro \
       cases (created if missing)."
    in
    Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: $(b,jsonl) (one schema_version-stamped object per \
       trial plus a summary object) or $(b,text)."
    in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("text", `Text) ]) `Text
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let smoke_arg =
    let doc =
      "Budgeted self-check: runs a fixed small trial count twice, verifies \
       the JSONL streams are bit-identical and schema-valid and that no \
       invariant is violated, and prints a one-line summary."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let replay_arg =
    let doc =
      "Re-run exactly one case from its printed trial seed (the complete \
       repro: circuits, mutations and process scenario are all re-derived \
       from it)."
    in
    Arg.(value & opt (some int) None & info [ "replay" ] ~docv:"SEED" ~doc)
  in
  let clark_tol_arg =
    let doc =
      "Override the absolute Clark-vs-MC agreement allowance (default 0.02; \
       0 demands exact agreement and is the CI's deliberately-weakened \
       failure-path probe)."
    in
    Arg.(value & opt (some float) None & info [ "clark-tol" ] ~doc)
  in
  let agree_z_arg =
    let doc =
      "Override the z multiplier on combined standard errors in the \
       agreement/certificate allowances (default 5)."
    in
    Arg.(value & opt (some float) None & info [ "agree-z" ] ~doc)
  in
  let timings_arg =
    let doc =
      "Print wall-clock and trials/sec on stderr (kept out of stdout so \
       default output stays byte-identical across runs)."
    in
    Arg.(value & flag & info [ "timings" ] ~doc)
  in
  let parse_invariants s =
    let parts =
      List.filter
        (fun p -> p <> "")
        (List.map String.trim (String.split_on_char ',' s))
    in
    if parts = [] then
      Error (Errors.domain ~param:"--oracle" "empty invariant list")
    else
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          match Oracle.invariant_of_string name with
          | Some i -> Ok (acc @ [ i ])
          | None ->
              Error
                (Errors.domain ~param:"--oracle"
                   (Printf.sprintf "unknown invariant %S (known: %s)" name
                      (String.concat ", "
                         (List.map Oracle.invariant_name Oracle.all_invariants)))))
        (Ok []) parts
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let required_trial_keys =
    [
      "\"schema_version\":"; "\"kind\":\"trial\""; "\"trial\":"; "\"seed\":";
      "\"stages\":"; "\"gates\":"; "\"mutations\":"; "\"process\":";
      "\"checks_run\":"; "\"violations\":"; "\"shrink_steps\":";
    ]
  in
  let smoke_trials = 6 in
  let run_smoke (cfg : Fuzz_run.config) =
    let cfg = { cfg with Fuzz_run.trials = smoke_trials } in
    let capture () =
      let buf = Buffer.create 1024 in
      let* summary =
        Checked.protect ~where:"fuzz --smoke" (fun () ->
            Fuzz_run.run
              ~on_trial:(fun t ->
                Buffer.add_string buf (Fuzz_run.trial_to_json t);
                Buffer.add_char buf '\n')
              cfg)
      in
      Buffer.add_string buf (Fuzz_run.summary_to_json summary);
      Buffer.add_char buf '\n';
      Ok (Buffer.contents buf, summary)
    in
    let* j1, s1 = capture () in
    let* j2, _ = capture () in
    if j1 <> j2 then
      Error
        (Errors.numeric ~where:"fuzz --smoke"
           "JSONL output differs between two runs at a fixed seed")
    else
      let rows =
        List.filter
          (fun l -> contains l "\"kind\":\"trial\"")
          (String.split_on_char '\n' j1)
      in
      let bad =
        List.find_opt
          (fun l ->
            List.exists (fun k -> not (contains l k)) required_trial_keys)
          rows
      in
      match bad with
      | Some l ->
          Error
            (Errors.numeric ~where:"fuzz --smoke"
               (Printf.sprintf "trial row missing a required key: %s" l))
      | None when List.length rows <> smoke_trials ->
          Error
            (Errors.numeric ~where:"fuzz --smoke"
               (Printf.sprintf "expected %d trial rows, got %d" smoke_trials
                  (List.length rows)))
      | None -> (
          match Fuzz_run.first_error s1 with
          | Some e -> Error e
          | None when s1.Fuzz_run.violations > 0 ->
              Error
                (Errors.violation ~invariant:"escape"
                   "smoke campaign recorded violations without filed findings")
          | None ->
              Printf.printf
                "fuzz smoke OK: %d trials, %d checks, bit-identical across \
                 two runs (seed %d)\n"
                s1.Fuzz_run.trials s1.Fuzz_run.checks_run s1.Fuzz_run.seed;
              Ok ())
  in
  let summary_error (s : Fuzz_run.summary) =
    match Fuzz_run.first_error s with
    | Some e -> Error e
    | None when s.Fuzz_run.violations > 0 ->
        (* violations whose case could not even be materialised carry
           no finding; still a counterexample *)
        Error
          (Errors.violation ~invariant:"escape"
             (Printf.sprintf "%d violation(s) without materialisable case"
                s.Fuzz_run.violations))
    | None -> Ok ()
  in
  let run trials seed max_gates oracle shrink corpus_dir format smoke replay
      clark_tol agree_z timings =
    handle
      (let* invariants =
         match oracle with
         | None -> Ok Oracle.all_invariants
         | Some s -> parse_invariants s
       in
       let tolerances =
         {
           Oracle.default_tolerances with
           Oracle.clark_abs =
             Option.value clark_tol
               ~default:Oracle.default_tolerances.Oracle.clark_abs;
           Oracle.agree_z =
             Option.value agree_z
               ~default:Oracle.default_tolerances.Oracle.agree_z;
         }
       in
       let cfg =
         {
           Fuzz_run.default_config with
           Fuzz_run.trials;
           seed;
           max_gates;
           tolerances;
           invariants;
           shrink;
           corpus_dir;
         }
       in
       if smoke then run_smoke cfg
       else
         let emit =
           match format with
           | `Jsonl -> fun t -> print_endline (Fuzz_run.trial_to_json t)
           | `Text -> fun t -> print_endline (Fuzz_run.trial_to_text t)
         in
         match replay with
         | Some gen_seed ->
             let* trial, _ =
               Checked.protect ~where:"fuzz --replay" (fun () ->
                   Fuzz_run.run_one cfg
                     ~macro_table:(Spv_circuit.Macro.Table.create ())
                     ~index:0 ~gen_seed)
             in
             emit trial;
             (match trial.Fuzz_run.violations with
             | [] -> Ok ()
             | v :: _ -> Error (Oracle.violation_to_error v))
         | None ->
             let* summary =
               Checked.protect ~where:"fuzz" (fun () ->
                   Fuzz_run.run ~now:Unix.gettimeofday ~on_trial:emit cfg)
             in
             (match format with
             | `Jsonl -> print_endline (Fuzz_run.summary_to_json summary)
             | `Text -> print_endline (Fuzz_run.summary_to_text summary));
             if timings then
               Printf.eprintf
                 "fuzz: %.2fs wall (%.1f trials/s), macro cache %d hit(s) / \
                  %d miss(es)\n%!"
                 summary.Fuzz_run.wall_seconds
                 (float_of_int summary.Fuzz_run.trials
                 /. Float.max 1e-9 summary.Fuzz_run.wall_seconds)
                 summary.Fuzz_run.macro_hits summary.Fuzz_run.macro_misses;
             summary_error summary)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random netlist pipelines \
          (attenuated depth/fanout/reconvergence), mutate them, draw random \
          process scenarios, and check every estimator and static pass \
          against the oracle invariants.  Violations are shrunk, filed into \
          the fault corpus, and reported with exit code 9; every finding is \
          reproducible from its printed seed alone via --replay.")
    Term.(
      const run $ trials_arg $ seed_arg $ max_gates_arg $ oracle_arg
      $ shrink_arg $ corpus_arg $ format_arg $ smoke_arg $ replay_arg
      $ clark_tol_arg $ agree_z_arg $ timings_arg)

(* ---- main ----------------------------------------------------------- *)

let () =
  (* Debug-mode postconditions: the oracles are always registered; the
     engine only consults them when SPV_DEBUG_BOUNDS is set (or a test
     enables it explicitly).  The sizing certificate is the always-on
     exit criterion — SPV_CERTIFY_SIZING=0 (or a sizer's
     ?certify:false) opts out. *)
  Spv_analysis.Bounds.install_engine_check ();
  Spv_analysis.Affine_sta.install_engine_check ();
  Spv_analysis.Certify.install_sizing_check ();
  (* The cone-guided importance proposal: the engine only consults the
     provider when --proposal cone is selected. *)
  Spv_analysis.Cones.install_engine_proposal ();
  (* Certified sensitivity pruning for the sizers; result-transparent
     (skips work, never changes reports — asserted under
     SPV_DEBUG_SENSITIVITY). *)
  Spv_analysis.Dominance.install_sizing_prune ();
  let doc = "statistical pipeline delay / yield toolkit (DATE'05 reproduction)" in
  let info = Cmd.info "spv_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiment_cmd; lint_cmd; analyze_cmd; certify_cmd; yield_cmd;
            mc_cmd; sta_cmd; size_cmd; power_cmd; export_cmd; criticality_cmd;
            curve_cmd; report_cmd; hold_cmd; fmax_cmd; abb_cmd; vth_cmd;
            sweep_cmd; serve_cmd; fuzz_cmd;
          ]))
